#include "core/integrating.h"

#include <algorithm>

#include "nn/graph.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace sccf::core {

IntegratingMlp::IntegratingMlp(size_t feature_dim, Options options)
    : feature_dim_(feature_dim), options_(std::move(options)), rng_(options_.seed) {
  std::vector<size_t> dims;
  dims.push_back(feature_dim_);
  for (size_t h : options_.hidden) dims.push_back(h);
  dims.push_back(1);
  mlp_ = std::make_unique<nn::Mlp>("sccf.merger", dims, rng_,
                                   options_.dropout);
  if (options_.score_skip_connection) {
    SCCF_CHECK_GE(feature_dim_, 2u);
    Tensor init = Tensor::Zeros({2, 1});
    init[0] = 1.0f;   // z_UI
    init[1] = 0.3f;   // z_UU
    skip_weights_ = std::make_unique<nn::Parameter>("sccf.merger.skip",
                                                    std::move(init));
  }
}

nn::Var IntegratingMlp::Forward(nn::Graph& g, nn::Var x) const {
  nn::Var logits = mlp_->Apply(g, x);
  if (skip_weights_ != nullptr) {
    nn::Var z = g.SliceCols(x, feature_dim_ - 2, feature_dim_);
    logits = g.Add(logits, g.MatMul(z, g.Param(skip_weights_.get())));
  }
  return logits;
}

float IntegratingMlp::BatchLoss(const UserBatch& batch) const {
  nn::Graph g(/*training=*/false);
  nn::Var x = g.Input(batch.features);
  nn::Var logits = Forward(g, x);
  Tensor labels = Tensor::Zeros({batch.features.rows(), 1});
  labels[batch.positive_row] = 1.0f;
  nn::Var loss = g.BceWithLogits(logits, labels);
  return g.value(loss).scalar();
}

Status IntegratingMlp::Train(std::vector<UserBatch> batches) {
  if (batches.empty()) {
    return Status::FailedPrecondition(
        "no merger training batches: no user's held-out item appeared in "
        "the candidate union");
  }
  for (const UserBatch& b : batches) {
    if (b.features.rank() != 2 || b.features.cols() != feature_dim_) {
      return Status::InvalidArgument("batch feature dim mismatch");
    }
    if (b.positive_row < 0 ||
        static_cast<size_t>(b.positive_row) >= b.features.rows()) {
      return Status::InvalidArgument("positive_row out of range");
    }
  }

  rng_.Shuffle(batches);
  const size_t num_valid = std::min(
      batches.size() - 1,
      static_cast<size_t>(batches.size() * options_.validation_fraction));
  const size_t num_train = batches.size() - num_valid;

  std::vector<nn::Parameter*> params = mlp_->Parameters();
  if (skip_weights_ != nullptr) params.push_back(skip_weights_.get());
  nn::AdamOptimizer::Options opt;
  opt.learning_rate = options_.learning_rate;
  opt.weight_decay = options_.l2;
  nn::AdamOptimizer adam(opt);

  // Snapshot of the best parameter values for early-stopping restore.
  std::vector<Tensor> best_values;
  auto snapshot = [&] {
    best_values.clear();
    for (nn::Parameter* p : params) best_values.push_back(p->value);
  };
  auto restore = [&] {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_values[i];
    }
  };

  float best_val = 1e30f;
  size_t bad_epochs = 0;
  std::vector<size_t> order(num_train);
  for (size_t i = 0; i < num_train; ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng_.Shuffle(order);
    double train_loss = 0.0;
    for (size_t idx : order) {
      const UserBatch& b = batches[idx];
      nn::Graph g(/*training=*/true, &rng_);
      nn::Var x = g.Input(b.features);
      nn::Var logits = Forward(g, x);
      Tensor labels = Tensor::Zeros({b.features.rows(), 1});
      labels[b.positive_row] = 1.0f;
      // Eq. 17 weights each user by 1/|C_u|, which is exactly the mean
      // BCE inside the batch.
      nn::Var loss = g.BceWithLogits(logits, labels);
      g.Backward(loss);
      adam.Step(params);
      train_loss += g.value(loss).scalar();
    }

    float val_loss = 0.0f;
    if (num_valid > 0) {
      for (size_t i = num_train; i < batches.size(); ++i) {
        val_loss += BatchLoss(batches[i]);
      }
      val_loss /= num_valid;
    } else {
      val_loss = static_cast<float>(train_loss / std::max<size_t>(1, num_train));
    }
    if (options_.verbose) {
      SCCF_LOG_INFO << "merger epoch " << epoch + 1 << " train="
                    << train_loss / std::max<size_t>(1, num_train)
                    << " val=" << val_loss;
    }
    if (val_loss < best_val - 1e-5f) {
      best_val = val_loss;
      bad_epochs = 0;
      snapshot();
    } else if (++bad_epochs >= options_.patience) {
      break;
    }
  }
  if (!best_values.empty()) restore();
  best_validation_loss_ = best_val;
  trained_ = true;
  return Status::OK();
}

void IntegratingMlp::Predict(const Tensor& features,
                             std::vector<float>* out) const {
  SCCF_CHECK(trained_) << "Train must be called first";
  nn::Graph g(/*training=*/false);
  nn::Var logits = Forward(g, g.Input(features));
  const Tensor& v = g.value(logits);
  out->assign(v.data(), v.data() + v.size());
}

}  // namespace sccf::core
