#ifndef SCCF_CORE_SCCF_H_
#define SCCF_CORE_SCCF_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/integrating.h"
#include "core/user_based.h"
#include "models/recommender.h"

namespace sccf::core {

/// Self-Complementary Collaborative Filtering — the paper's framework
/// (Fig. 2). Wraps any fitted inductive UI model with:
///
///   1. the UI candidate list C_UI (Eq. 10, global view),
///   2. the user-based candidate list C_UU from the real-time neighborhood
///      (Eq. 11-12, local view), and
///   3. the integrating MLP that fuses both into the final top-N (Eq. 15-17).
///
/// The merger is trained on each user's validation-position item with
/// training-prefix candidate lists; test scoring rebuilds the user snapshot
/// with validation items added back, matching Sec. IV-A4.
class Sccf : public models::Recommender {
 public:
  struct Options {
    /// Size N of each candidate list (Eq. 14). Must cover the largest
    /// evaluation cutoff.
    size_t num_candidates = 100;
    UserBasedComponent::Options user_based;
    IntegratingMlp::Options merger;
    /// Ablation: replace the MLP with the sum of the two z-normalised
    /// scores (no learned fusion).
    bool score_sum_fusion = false;
  };

  /// `base` must be fitted before Sccf::Fit and outlive this object.
  Sccf(const models::InductiveUiModel& base, Options options);

  std::string name() const override { return base_->name() + "-SCCF"; }

  Status Fit(const data::LeaveOneOutSplit& split) override;

  /// Final SCCF scores: candidates in the union C_UI u C_UU carry the
  /// merger output; everything else is -1e30 (outside the candidate set).
  void ScoreAll(size_t u, std::span<const int> history,
                std::vector<float>* scores) const override;

  /// Both candidate lists at test time, for the Fig.-4 analysis.
  struct Lists {
    CandidateList ui;
    CandidateList uu;
  };
  Lists CandidateListsFor(size_t u, std::span<const int> history) const;

  const UserBasedComponent& user_based_test() const { return *uu_test_; }
  const models::InductiveUiModel& base() const { return *base_; }
  const IntegratingMlp& merger() const { return *merger_; }
  const Options& options() const { return options_; }

 private:
  struct UnionFeatures {
    std::vector<int> items;  // candidate union, ascending item id
    Tensor features;         // [items.size(), 2d+2]
  };

  /// Computes both raw score vectors, the candidate union, and the Eq.-16
  /// feature matrix for user `u` with the given history, against the given
  /// user-based snapshot.
  UnionFeatures BuildFeatures(size_t u, std::span<const int> history,
                              const UserBasedComponent& uu) const;

  const models::InductiveUiModel* base_;
  Options options_;
  std::unique_ptr<UserBasedComponent> uu_train_;
  std::unique_ptr<UserBasedComponent> uu_test_;
  std::unique_ptr<IntegratingMlp> merger_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_SCCF_H_
