#ifndef SCCF_CORE_PROFILE_NEIGHBORHOOD_H_
#define SCCF_CORE_PROFILE_NEIGHBORHOOD_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "index/vector_index.h"
#include "util/status.h"

namespace sccf::core {

/// Profile-aware neighbor identification — the paper's first stated
/// future-work direction ("incorporate side information such as user
/// profile to identify similar users").
///
/// Each user carries a categorical profile (e.g., demographic bucket or
/// declared segment). The neighborhood query over-fetches from the
/// behaviour-embedding index, then re-scores candidates with
///
///   score = (1 - profile_weight) * cosine(m_u, m_v)
///         + profile_weight       * agreement(profile_u, profile_v)
///
/// where agreement is the fraction of matching profile fields. With
/// profile_weight = 0 this reduces exactly to the base SCCF neighborhood.
class ProfileAwareNeighborhood {
 public:
  struct Options {
    /// Blend factor in [0, 1).
    float profile_weight = 0.3f;
    /// Over-fetch multiplier: candidates = beta * expansion are fetched
    /// from the index before profile re-scoring keeps the top beta.
    size_t expansion = 3;
  };

  /// `index` is the fitted user-embedding index (not owned). Profiles are
  /// indexed by user id; every id the index can return must be covered.
  ProfileAwareNeighborhood(const index::VectorIndex* index,
                           std::vector<std::vector<int>> profiles,
                           Options options);

  /// Top-beta neighbors under the blended similarity.
  StatusOr<std::vector<index::Neighbor>> Neighbors(
      const float* query_embedding, const std::vector<int>& query_profile,
      size_t beta, int exclude_user) const;

  /// Fraction of equal fields between two profiles (0 when arities
  /// differ).
  static float ProfileAgreement(const std::vector<int>& a,
                                const std::vector<int>& b);

 private:
  const index::VectorIndex* index_;
  std::vector<std::vector<int>> profiles_;
  Options options_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_PROFILE_NEIGHBORHOOD_H_
