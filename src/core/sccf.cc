#include "core/sccf.h"

#include <algorithm>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace sccf::core {

namespace {
constexpr float kMaskedScore = -1e30f;
}  // namespace

Sccf::Sccf(const models::InductiveUiModel& base, Options options)
    : base_(&base), options_(std::move(options)) {
  SCCF_CHECK_GT(options_.num_candidates, 0u);
}

Sccf::UnionFeatures Sccf::BuildFeatures(size_t u,
                                        std::span<const int> history,
                                        const UserBasedComponent& uu) const {
  const size_t d = base_->embedding_dim();
  const size_t n_cand = options_.num_candidates;

  // Infer m_u once; UI scores are its dot products with every item
  // (Eq. 10), with the user's history masked (never recommend R+_u).
  std::vector<float> user_emb(d, 0.0f);
  base_->InferUserEmbedding(history, user_emb.data());
  std::vector<float> ui_scores(base_->num_items());
  base_->ScoreItems(user_emb.data(), ui_scores.data());
  for (int item : history) ui_scores[item] = kMaskedScore;

  std::vector<float> uu_scores;
  uu.ScoreAll(u, history, &uu_scores);

  const CandidateList ui_list = TopNFromScores(ui_scores, n_cand);
  // UU scores are vote sums: only strictly positive entries are real
  // candidates.
  const CandidateList uu_list = TopNFromScores(uu_scores, n_cand, 0.0f);

  UnionFeatures out;
  out.items.reserve(ui_list.size() + uu_list.size());
  for (const auto& c : ui_list) out.items.push_back(c.id);
  for (const auto& c : uu_list) out.items.push_back(c.id);
  std::sort(out.items.begin(), out.items.end());
  out.items.erase(std::unique(out.items.begin(), out.items.end()),
                  out.items.end());

  // Eq. 16: z-normalise each channel over the candidate union, per user.
  const ScoreMoments mui = MomentsOver(ui_scores, out.items);
  const ScoreMoments muu = MomentsOver(uu_scores, out.items);

  const size_t c = out.items.size();
  out.features = Tensor::Zeros({c, 2 * d + 2});
  for (size_t r = 0; r < c; ++r) {
    const int item = out.items[r];
    float* row = out.features.data() + r * (2 * d + 2);
    std::copy(user_emb.begin(), user_emb.end(), row);
    const float* q = base_->ItemEmbedding(item);
    std::copy(q, q + d, row + d);
    row[2 * d] = (ui_scores[item] - mui.mean) / mui.stddev;
    row[2 * d + 1] = (uu_scores[item] - muu.mean) / muu.stddev;
  }
  return out;
}

Status Sccf::Fit(const data::LeaveOneOutSplit& split) {
  if (base_->num_items() == 0) {
    return Status::FailedPrecondition(
        "the UI base model must be fitted before Sccf::Fit");
  }
  // Two user snapshots: training prefixes for merger training, prefixes
  // plus validation items for test-time scoring (Sec. IV-A4).
  UserBasedComponent::Options uu_opts = options_.user_based;
  uu_opts.include_validation = false;
  uu_train_ = std::make_unique<UserBasedComponent>(*base_, uu_opts);
  SCCF_RETURN_NOT_OK(uu_train_->Fit(split));

  uu_opts.include_validation = true;
  uu_test_ = std::make_unique<UserBasedComponent>(*base_, uu_opts);
  SCCF_RETURN_NOT_OK(uu_test_->Fit(split));

  if (options_.score_sum_fusion) return Status::OK();

  const size_t d = base_->embedding_dim();
  merger_ = std::make_unique<IntegratingMlp>(2 * d + 2, options_.merger);

  // Build one batch per user whose validation item lands in the candidate
  // union (Sec. III-D: users whose i+ is outside C_u are not used).
  std::vector<IntegratingMlp::UserBatch> batches;
  for (size_t u = 0; u < split.num_users(); ++u) {
    if (!split.evaluable(u)) continue;
    const std::span<const int> history = split.TrainSequence(u);
    if (history.empty()) continue;
    UnionFeatures uf = BuildFeatures(u, history, *uu_train_);
    const int valid_item = split.ValidItem(u);
    const auto it =
        std::lower_bound(uf.items.begin(), uf.items.end(), valid_item);
    if (it == uf.items.end() || *it != valid_item) continue;
    IntegratingMlp::UserBatch batch;
    batch.positive_row = static_cast<int>(it - uf.items.begin());
    batch.features = std::move(uf.features);
    batches.push_back(std::move(batch));
  }
  return merger_->Train(std::move(batches));
}

void Sccf::ScoreAll(size_t u, std::span<const int> history,
                    std::vector<float>* scores) const {
  SCCF_CHECK(uu_test_ != nullptr) << "Fit must be called first";
  scores->assign(base_->num_items(), kMaskedScore);
  if (history.empty()) return;

  UnionFeatures uf = BuildFeatures(u, history, *uu_test_);
  if (uf.items.empty()) return;

  if (options_.score_sum_fusion) {
    // Ablation path: z(UI) + z(UU) without the learned merger.
    const size_t d = base_->embedding_dim();
    for (size_t r = 0; r < uf.items.size(); ++r) {
      const float* row = uf.features.data() + r * (2 * d + 2);
      (*scores)[uf.items[r]] = row[2 * d] + row[2 * d + 1];
    }
    return;
  }

  std::vector<float> merged;
  merger_->Predict(uf.features, &merged);
  for (size_t r = 0; r < uf.items.size(); ++r) {
    (*scores)[uf.items[r]] = merged[r];
  }
}

Sccf::Lists Sccf::CandidateListsFor(size_t u,
                                    std::span<const int> history) const {
  SCCF_CHECK(uu_test_ != nullptr) << "Fit must be called first";
  std::vector<float> ui_scores;
  base_->ScoreAll(u, history, &ui_scores);
  for (int item : history) ui_scores[item] = kMaskedScore;
  std::vector<float> uu_scores;
  uu_test_->ScoreAll(u, history, &uu_scores);

  Lists lists;
  lists.ui = TopNFromScores(ui_scores, options_.num_candidates);
  lists.uu = TopNFromScores(uu_scores, options_.num_candidates, 0.0f);
  return lists;
}

}  // namespace sccf::core
