#ifndef SCCF_CORE_INTEGRATING_H_
#define SCCF_CORE_INTEGRATING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "tensor/tensor.h"
#include "util/random.h"
#include "util/status.h"

namespace sccf::core {

/// The SCCF integrating component (paper Sec. III-D): a fully connected
/// network that fuses, per candidate item, the concatenation
/// [m_u (+) q_i (+) r~UI_ui (+) r~UU_ui] (Eq. 16, scores z-normalised per
/// user over the candidate union) into the final preference (Eq. 15).
///
/// Training follows Eq. 17: each user whose held-out item appears in the
/// candidate union contributes a batch with exactly one positive row; the
/// loss is the per-user mean binary cross-entropy.
class IntegratingMlp {
 public:
  struct Options {
    /// Hidden widths of the fully connected stack.
    std::vector<size_t> hidden = {32, 16};
    size_t max_epochs = 40;
    float learning_rate = 0.001f;
    /// lambda of Eq. 17.
    float l2 = 1e-6f;
    /// Fraction of users held out to drive early stopping (paper uses
    /// 10% of users).
    float validation_fraction = 0.1f;
    size_t patience = 3;
    float dropout = 0.0f;
    uint64_t seed = 99;
    bool verbose = false;
    /// Adds a learned linear skip over the two normalised preference
    /// features, initialised to favour the UI score. The merger then
    /// starts from a sensible fusion (≈ z_UI + 0.3 z_UU) instead of
    /// random, which keeps SCCF from under-cutting a very strong UI base
    /// while the MLP learns the fine-grained corrections of Eq. 15.
    bool score_skip_connection = true;
  };

  /// One user's training example: feature rows for every candidate in
  /// C_u = C_UI u C_UU, with `positive_row` marking the held-out item.
  struct UserBatch {
    Tensor features;  // [num_candidates, feature_dim]
    int positive_row = -1;
  };

  /// `feature_dim` = 2 * embedding_dim + 2.
  IntegratingMlp(size_t feature_dim, Options options);

  /// Trains with early stopping on a held-out user slice. Requires at
  /// least one batch.
  Status Train(std::vector<UserBatch> batches);

  /// Scores each feature row (Eq. 15). Usable from multiple threads.
  void Predict(const Tensor& features, std::vector<float>* out) const;

  bool trained() const { return trained_; }
  size_t feature_dim() const { return feature_dim_; }
  float best_validation_loss() const { return best_validation_loss_; }

 private:
  nn::Var Forward(nn::Graph& g, nn::Var x) const;
  float BatchLoss(const UserBatch& batch) const;

  size_t feature_dim_ = 0;
  Options options_;
  Rng rng_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unique_ptr<nn::Parameter> skip_weights_;  // [2, 1] over z_UI, z_UU
  bool trained_ = false;
  float best_validation_loss_ = 0.0f;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_INTEGRATING_H_
