#include "core/rank_stage.h"

#include <algorithm>
#include <cmath>

#include "core/candidates.h"
#include "core/topk_merge.h"
#include "simd/kernels.h"
#include "util/logging.h"

namespace sccf::core {

SccfRankStage::SccfRankStage(const models::InductiveUiModel& base,
                             const UserBasedComponent& user_based,
                             Options options)
    : base_(&base), user_based_(&user_based), options_(options) {}

StatusOr<std::vector<index::Neighbor>> SccfRankStage::Rerank(
    size_t user, std::span<const int> history,
    const std::vector<int>& candidates) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("candidate set is empty");
  }
  const size_t d = base_->embedding_dim();
  std::vector<float> user_emb(d, 0.0f);
  base_->InferUserEmbedding(history, user_emb.data());

  // UI scores restricted to the candidates (arbitrary item subset, so no
  // batched scan — per-candidate dispatched dots).
  std::vector<float> ui(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ui[i] = simd::Dot(user_emb.data(), base_->ItemEmbedding(candidates[i]),
                      d);
  }
  // UU vote mass over the full catalog, then restricted.
  std::vector<float> uu_all;
  user_based_->ScoreAll(user, history, &uu_all);
  std::vector<float> uu(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    uu[i] = uu_all[candidates[i]];
  }

  auto znorm = [](std::vector<float>& v) {
    double mean = 0.0;
    for (float x : v) mean += x;
    mean /= v.size();
    double var = 0.0;
    for (float x : v) var += (x - mean) * (x - mean);
    var /= v.size();
    const double stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    for (float& x : v) x = static_cast<float>((x - mean) / stddev);
  };
  znorm(ui);
  znorm(uu);

  std::vector<index::Neighbor> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i] = {candidates[i], ui[i] + options_.uu_weight * uu[i]};
  }
  SortNeighborsDescending(&out);
  return out;
}

}  // namespace sccf::core
