#ifndef SCCF_CORE_RANK_STAGE_H_
#define SCCF_CORE_RANK_STAGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/user_based.h"
#include "models/recommender.h"
#include "util/status.h"

namespace sccf::core {

/// Applying SCCF to the *ranking* step — the paper's second future-work
/// direction ("existing methods only consider user-item relation to
/// predict the score for each candidate in the ranking step").
///
/// Given a candidate set produced by any upstream generator, the stage
/// re-scores each candidate by blending the UI preference with the
/// user-neighborhood vote mass (Eq. 12 restricted to the candidates),
/// both z-normalised over the candidate set (Eq. 16):
///
///   score(i) = z(m_u . q_i) + uu_weight * z(r^UU_ui)
///
/// This injects the local neighborhood signal into a stage that
/// traditionally sees only user-item features, without retraining the
/// upstream ranker.
class SccfRankStage {
 public:
  struct Options {
    float uu_weight = 0.5f;
  };

  /// Both references must outlive the stage; `user_based` must be fitted.
  SccfRankStage(const models::InductiveUiModel& base,
                const UserBasedComponent& user_based)
      : SccfRankStage(base, user_based, Options()) {}
  SccfRankStage(const models::InductiveUiModel& base,
                const UserBasedComponent& user_based, Options options);

  /// Re-ranks `candidates` for the user; returns them sorted by the
  /// blended score (descending).
  StatusOr<std::vector<index::Neighbor>> Rerank(
      size_t user, std::span<const int> history,
      const std::vector<int>& candidates) const;

 private:
  const models::InductiveUiModel* base_;
  const UserBasedComponent* user_based_;
  Options options_;
};

}  // namespace sccf::core

#endif  // SCCF_CORE_RANK_STAGE_H_
