#include "core/realtime.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace sccf::core {

RealTimeService::RealTimeService(const models::InductiveUiModel& model,
                                 Options options)
    : model_(&model), options_(options) {
  SCCF_CHECK_GT(model_->num_items(), 0u) << "model must be fitted";
}

void RealTimeService::InferWindowEmbedding(const std::vector<int>& history,
                                           float* out) const {
  const size_t take = options_.infer_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.infer_window);
  model_->InferUserEmbedding(
      std::span<const int>(history.data() + history.size() - take, take),
      out);
}

std::vector<int> RealTimeService::VoteItems(
    const std::vector<int>& history) const {
  const size_t take = options_.vote_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.vote_window);
  std::vector<int> votes(history.end() - take, history.end());
  std::sort(votes.begin(), votes.end());
  votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
  return votes;
}

Status RealTimeService::Bootstrap(const std::vector<UserState>& users) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap may be called once");
  }
  const size_t d = model_->embedding_dim();
  switch (options_.index_kind) {
    case IndexKind::kBruteForce:
      index_ =
          std::make_unique<index::BruteForceIndex>(d, options_.metric);
      break;
    case IndexKind::kIvfFlat:
      index_ = std::make_unique<index::IvfFlatIndex>(d, options_.metric,
                                                     options_.ivf);
      break;
    case IndexKind::kHnsw:
      index_ = std::make_unique<index::HnswIndex>(d, options_.metric,
                                                  options_.hnsw);
      break;
  }

  std::vector<float> embeddings(users.size() * d, 0.0f);
  for (size_t i = 0; i < users.size(); ++i) {
    const UserState& s = users[i];
    if (s.user < 0) return Status::InvalidArgument("negative user id");
    if (!s.history.empty()) {
      InferWindowEmbedding(s.history, embeddings.data() + i * d);
      vote_items_[s.user] = VoteItems(s.history);
    }
    histories_[s.user] = s.history;
  }
  if (options_.index_kind == IndexKind::kIvfFlat) {
    auto* ivf = static_cast<index::IvfFlatIndex*>(index_.get());
    SCCF_RETURN_NOT_OK(ivf->Train(embeddings, users.size()));
  }
  for (size_t i = 0; i < users.size(); ++i) {
    SCCF_RETURN_NOT_OK(
        index_->Add(users[i].user, embeddings.data() + i * d));
  }
  bootstrapped_ = true;
  return Status::OK();
}

Status RealTimeService::BootstrapFromSplit(
    const data::LeaveOneOutSplit& split) {
  std::vector<UserState> users(split.num_users());
  for (size_t u = 0; u < split.num_users(); ++u) {
    users[u].user = static_cast<int>(u);
    const std::span<const int> h = split.TrainSequence(u);
    users[u].history.assign(h.begin(), h.end());
  }
  return Bootstrap(users);
}

StatusOr<RealTimeService::UpdateTiming> RealTimeService::OnInteraction(
    int user, int item) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (item < 0 || static_cast<size_t>(item) >= model_->num_items()) {
    return Status::InvalidArgument("unknown item " + std::to_string(item));
  }
  std::vector<int>& history = histories_[user];  // creates on cold start
  history.push_back(item);

  UpdateTiming timing;
  const size_t d = model_->embedding_dim();
  std::vector<float> emb(d, 0.0f);

  Stopwatch infer_clock;
  InferWindowEmbedding(history, emb.data());
  timing.infer_ms = infer_clock.ElapsedMillis();

  Stopwatch index_clock;
  SCCF_RETURN_NOT_OK(index_->Add(user, emb.data()));
  timing.index_ms = index_clock.ElapsedMillis();
  vote_items_[user] = VoteItems(history);

  Stopwatch identify_clock;
  SCCF_ASSIGN_OR_RETURN(std::vector<index::Neighbor> neighbors,
                        index_->Search(emb.data(), options_.beta, user));
  (void)neighbors;
  timing.identify_ms = identify_clock.ElapsedMillis();
  return timing;
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::Neighbors(
    int user) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  auto it = histories_.find(user);
  if (it == histories_.end() || it->second.empty()) {
    return Status::NotFound("user " + std::to_string(user) +
                            " has no history");
  }
  std::vector<float> emb(model_->embedding_dim(), 0.0f);
  InferWindowEmbedding(it->second, emb.data());
  return index_->Search(emb.data(), options_.beta, user);
}

StatusOr<CandidateList> RealTimeService::RecommendUserBased(int user,
                                                            size_t n) const {
  SCCF_ASSIGN_OR_RETURN(std::vector<index::Neighbor> neighbors,
                        Neighbors(user));
  std::vector<float> scores(model_->num_items(), 0.0f);
  for (const index::Neighbor& nb : neighbors) {
    auto vi = vote_items_.find(nb.id);
    if (vi == vote_items_.end()) continue;
    for (int item : vi->second) scores[item] += nb.score;
  }
  const auto hist = histories_.find(user);
  if (hist != histories_.end()) {
    for (int item : hist->second) scores[item] = 0.0f;
  }
  return TopNFromScores(scores, n, 0.0f);
}

const std::vector<int>& RealTimeService::History(int user) const {
  static const std::vector<int>* empty = new std::vector<int>();
  auto it = histories_.find(user);
  return it == histories_.end() ? *empty : it->second;
}

}  // namespace sccf::core
