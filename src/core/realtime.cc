#include "core/realtime.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/topk_merge.h"
#include "util/coding.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sccf::core {

namespace {

/// Monotonic clock for buffer-age stamps (same clock as Stopwatch).
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Background sweep cadence: half the compaction interval (clamped to
/// [1ms, interval]) so an overdue shard is drained within ~1.5 intervals
/// of its oldest row; with no interval the thread polls every 10ms and
/// drains anything non-empty.
int64_t SweepPeriodMs(int64_t interval_ms) {
  if (interval_ms <= 0) return 10;
  return std::max<int64_t>(1, interval_ms / 2);
}

/// splitmix64 finalizer: a fixed, platform-independent user -> shard map
/// (std::hash<int> is identity on libstdc++, which would turn "users 0..T
/// round-robin" workloads into a single hot shard under modulo). Shared
/// with scenario/generators.cc, whose hot_shard adversarial generator
/// picks user ids that all land on the same shard under this exact map.
size_t ShardIndex(int user, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(
      SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(user))) %
      num_shards);
}

}  // namespace

RealTimeService::RealTimeService(const models::InductiveUiModel& model,
                                 Options options)
    : model_(&model), options_(options) {
  SCCF_CHECK_GT(model_->num_items(), 0u) << "model must be fitted";
}

RealTimeService::~RealTimeService() { StopBackgroundCompaction(); }

void RealTimeService::InferWindowEmbedding(const std::vector<int>& history,
                                           float* out) const {
  const size_t take = options_.infer_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.infer_window);
  model_->InferUserEmbedding(
      std::span<const int>(history.data() + history.size() - take, take),
      out);
}

std::vector<int> RealTimeService::VoteItems(
    const std::vector<int>& history) const {
  const size_t take = options_.vote_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.vote_window);
  std::vector<int> votes(history.end() - take, history.end());
  std::sort(votes.begin(), votes.end());
  votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
  return votes;
}

std::unique_ptr<index::VectorIndex> RealTimeService::MakeShardIndex(
    size_t shard_population) const {
  const size_t d = model_->embedding_dim();
  switch (options_.index_kind) {
    case IndexKind::kBruteForce:
      return std::make_unique<index::BruteForceIndex>(
          d, options_.metric, /*parallel=*/false, options_.storage);
    case IndexKind::kIvfFlat: {
      index::IvfFlatIndex::Options ivf = options_.ivf;
      ivf.nlist = std::min(ivf.nlist, std::max<size_t>(1, shard_population));
      return std::make_unique<index::IvfFlatIndex>(d, options_.metric, ivf,
                                                   options_.storage);
    }
    case IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(d, options_.metric,
                                                options_.hnsw,
                                                options_.storage);
  }
  return nullptr;  // unreachable
}

Status RealTimeService::BuildShard(
    Shard* shard, const std::vector<const UserState*>& users) const {
  const size_t d = model_->embedding_dim();
  shard->index = MakeShardIndex(users.size());
  shard->pending = std::make_unique<index::UpsertBuffer>(d, options_.metric,
                                                         options_.storage);

  std::vector<float> embeddings(users.size() * d, 0.0f);
  for (size_t i = 0; i < users.size(); ++i) {
    const UserState& s = *users[i];
    if (!s.history.empty()) {
      InferWindowEmbedding(s.history, embeddings.data() + i * d);
      shard->vote_items[s.user] = VoteItems(s.history);
    }
    shard->histories[s.user] = s.history;
  }
  if (options_.index_kind == IndexKind::kIvfFlat) {
    auto* ivf = static_cast<index::IvfFlatIndex*>(shard->index.get());
    if (users.empty()) {
      // Train a one-centroid quantizer on the origin so cold-start users
      // landing in this shard can still be added and searched.
      std::vector<float> zero(d, 0.0f);
      SCCF_RETURN_NOT_OK(ivf->Train(zero, 1));
    } else {
      SCCF_RETURN_NOT_OK(ivf->Train(embeddings, users.size()));
    }
  }
  for (size_t i = 0; i < users.size(); ++i) {
    SCCF_RETURN_NOT_OK(
        shard->index->Add(users[i]->user, embeddings.data() + i * d));
  }
  return Status::OK();
}

Status RealTimeService::Bootstrap(const std::vector<UserState>& users) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap may be called once");
  }
  if (options_.beta == 0) {
    return Status::InvalidArgument("options.beta must be positive");
  }
  if (options_.compaction_interval_ms < 0) {
    return Status::InvalidArgument(
        "options.compaction_interval_ms must be >= 0");
  }
  for (const UserState& s : users) {
    if (s.user < 0) return Status::InvalidArgument("negative user id");
  }

  size_t num_shards = options_.num_shards;
  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  shards_.clear();
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }

  // Partition preserving input order, so per-shard insertion order (and
  // therefore index state) is deterministic for a given input.
  std::vector<std::vector<const UserState*>> partition(num_shards);
  for (const UserState& s : users) {
    partition[ShardIndex(s.user, num_shards)].push_back(&s);
  }

  std::vector<Status> shard_status(num_shards);
  ParallelFor(0, num_shards, [&](size_t s) {
    shard_status[s] = BuildShard(shards_[s].get(), partition[s]);
  });
  for (const Status& st : shard_status) {
    if (!st.ok()) return st;
  }
  bootstrapped_ = true;
  if (options_.background_compaction) {
    SCCF_RETURN_NOT_OK(StartBackgroundCompaction());
  }
  return Status::OK();
}

Status RealTimeService::BootstrapFromSplit(
    const data::LeaveOneOutSplit& split) {
  std::vector<UserState> users(split.num_users());
  for (size_t u = 0; u < split.num_users(); ++u) {
    users[u].user = static_cast<int>(u);
    const std::span<const int> h = split.TrainSequence(u);
    users[u].history.assign(h.begin(), h.end());
  }
  return Bootstrap(users);
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::SearchShard(
    const Shard& shard, const float* query, size_t k,
    int exclude_user) const {
  // Age policy, query side: an overdue buffer is drained before the
  // search, under an opportunistically-acquired write lock. try_to_lock
  // keeps a herd of concurrent readers from queueing on the exclusive
  // lock the instant a shard turns overdue (a failed try means some
  // other thread holds the lock — a competing drainer or an ingest
  // writer that runs the same age check — so this query just serves the
  // merged staged view and lets that thread, the next toucher, or the
  // background sweep do the drain). The lock-free overdue probe keeps
  // the common case (nothing staged, or staged but fresh) on the pure
  // shared-lock path; the post-acquisition re-check handles a drain that
  // already won. Draining is bit-exact, so this only moves rows from the
  // linear buffer scan into the backend index.
  if (ShardOverdue(shard)) {
    std::unique_lock<std::shared_mutex> wlock(shard.mu, std::try_to_lock);
    if (wlock.owns_lock() && shard.pending != nullptr &&
        !shard.pending->empty() && ShardOverdue(shard)) {
      SCCF_RETURN_NOT_OK(DrainShardLocked(shard));
    }
  }
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  if (shard.pending == nullptr || shard.pending->empty()) {
    return shard.index->Search(query, k, exclude_user);
  }
  // Staged ids shadow their stale indexed rows, so ask the index for up
  // to `staged` extra hits — dropping the shadowed ones can then never
  // starve the merge below k results.
  SCCF_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> hits,
      shard.index->Search(query, k + shard.pending->size(), exclude_user));
  index::TopKAccumulator acc(k);
  for (const index::Neighbor& nb : hits) {
    if (!shard.pending->contains(nb.id)) acc.Offer(nb.id, nb.score);
  }
  shard.pending->OfferTo(query, exclude_user, &acc);
  return acc.Take();
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::SearchAllShards(
    const float* query, size_t k, int exclude_user) const {
  if (shards_.size() == 1) {  // single-shard fast path: no merge layer
    return SearchShard(*shards_[0], query, k, exclude_user);
  }
  std::vector<std::vector<index::Neighbor>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    SCCF_ASSIGN_OR_RETURN(per_shard[s],
                          SearchShard(*shards_[s], query, k, exclude_user));
  }
  return MergeTopK(std::move(per_shard), k);
}

StatusOr<RealTimeService::UpdateTiming> RealTimeService::OnInteraction(
    int user, int item) {
  const Event event{user, item, 0};
  SCCF_ASSIGN_OR_RETURN(BatchResult result,
                        OnInteractionBatch(std::span<const Event>(&event, 1)));
  return result.timings[0];
}

StatusOr<RealTimeService::BatchResult> RealTimeService::OnInteractionBatch(
    std::span<const Event> events, bool identify) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  // Validate the whole batch before touching any shard: a rejected batch
  // must leave no partial state behind.
  for (const Event& e : events) {
    if (e.user < 0) {
      return Status::InvalidArgument("negative user id " +
                                     std::to_string(e.user));
    }
    if (e.item < 0 || static_cast<size_t>(e.item) >= model_->num_items()) {
      return Status::InvalidArgument("unknown item " + std::to_string(e.item));
    }
    if (e.ts < 0) {
      return Status::InvalidArgument("negative timestamp " +
                                     std::to_string(e.ts));
    }
  }
  BatchResult result;
  result.timings.assign(events.size(), UpdateTiming{});
  if (events.empty()) return result;

  const size_t d = model_->embedding_dim();

  // Single-event fast path (what OnInteraction delegates to): skip the
  // grouping scaffolding — per-event serving latency must not pay for
  // O(num_shards) scratch it cannot use.
  if (events.size() == 1) {
    const Event& e = events[0];
    std::vector<float> emb(d, 0.0f);
    const size_t shard_idx = ShardIndex(e.user, shards_.size());
    Shard& shard = *shards_[shard_idx];
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      SCCF_RETURN_NOT_OK(JournalShardGroupLocked(shard_idx, shard, events));
      auto [hist_it, created] = shard.histories.try_emplace(e.user);
      hist_it->second.push_back(e.item);  // cold start: creates
      result.cold_start_users = created ? 1 : 0;
      SCCF_RETURN_NOT_OK(
          RefreshTouchedUser(shard, e.user, emb.data(),
                             &result.timings[0]));
      result.pending_upserts = shard.pending->size();
    }
    result.users_touched = 1;
    if (identify) {
      Stopwatch identify_clock;
      SCCF_ASSIGN_OR_RETURN(
          std::vector<index::Neighbor> neighbors,
          SearchAllShards(emb.data(), options_.beta, e.user));
      (void)neighbors;
      result.timings[0].identify_ms = identify_clock.ElapsedMillis();
    }
    return result;
  }

  // Group event positions by owning shard, preserving batch order (which
  // is each user's chronological order by contract).
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < events.size(); ++i) {
    by_shard[ShardIndex(events[i].user, shards_.size())].push_back(i);
  }

  // Users touched by this batch, in deterministic (shard, first-touch)
  // order, with each user's final embedding kept for the identify pass.
  struct TouchedUser {
    int user = -1;
    size_t last_event = 0;  // batch position carrying this user's costs
  };
  std::vector<TouchedUser> touched;
  std::vector<float> final_embs;

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mu);

    // Write-ahead: journal this shard group (the events in batch order,
    // which replay re-groups identically) before any mutation below. The
    // grouped positions aren't contiguous in `events`, hence the copy.
    if (sink_ != nullptr) {
      std::vector<Event> group;
      group.reserve(by_shard[s].size());
      for (size_t i : by_shard[s]) group.push_back(events[i]);
      SCCF_RETURN_NOT_OK(JournalShardGroupLocked(s, shard, group));
    } else {
      ++shard.journal_seq;
    }

    // Pass 1: append every event to its user's history (cold start
    // creates the user), recording who was touched.
    const size_t shard_first = touched.size();
    std::unordered_map<int, size_t> touched_pos;  // user -> touched index
    for (size_t i : by_shard[s]) {
      const Event& e = events[i];
      auto [hist_it, created] = shard.histories.try_emplace(e.user);
      hist_it->second.push_back(e.item);
      result.cold_start_users += created ? 1 : 0;
      auto [it, inserted] = touched_pos.try_emplace(e.user, touched.size());
      if (inserted) {
        touched.push_back({e.user, i});
        final_embs.resize(final_embs.size() + d, 0.0f);
      } else {
        touched[it->second].last_event = i;
      }
    }

    // Pass 2: re-infer each touched user once, from the final history,
    // and push the embedding toward the index — directly when writing
    // through, via the shard's write buffer when batching compactions.
    for (size_t t = shard_first; t < touched.size(); ++t) {
      SCCF_RETURN_NOT_OK(RefreshTouchedUser(
          shard, touched[t].user, final_embs.data() + t * d,
          &result.timings[touched[t].last_event]));
    }
    result.pending_upserts += shard.pending->size();
  }
  result.users_touched = touched.size();

  if (!identify) return result;

  // Identify outside every write lock: the fresh neighborhood spans all
  // shards, and holding a write lock while taking other shards' read
  // locks would serialize ingest (and risk lock-order deadlock).
  for (size_t t = 0; t < touched.size(); ++t) {
    Stopwatch identify_clock;
    SCCF_ASSIGN_OR_RETURN(
        std::vector<index::Neighbor> neighbors,
        SearchAllShards(final_embs.data() + t * d, options_.beta,
                        touched[t].user));
    (void)neighbors;
    result.timings[touched[t].last_event].identify_ms =
        identify_clock.ElapsedMillis();
  }
  return result;
}

Status RealTimeService::JournalShardGroupLocked(
    size_t shard_idx, Shard& shard, std::span<const Event> events) {
  const uint64_t seq = shard.journal_seq + 1;
  if (sink_ != nullptr) {
    SCCF_RETURN_NOT_OK(sink_->Append(shard_idx, seq, events));
  }
  // Bumped only after the sink accepted the record: a failed append must
  // leave no sequence gap for later records to trip over at replay.
  shard.journal_seq = seq;
  return Status::OK();
}

Status RealTimeService::RefreshTouchedUser(Shard& shard, int user,
                                           float* emb,
                                           UpdateTiming* timing) {
  const std::vector<int>& history = shard.histories[user];

  Stopwatch infer_clock;
  InferWindowEmbedding(history, emb);
  timing->infer_ms = infer_clock.ElapsedMillis();

  Stopwatch index_clock;
  if (options_.compaction_threshold <= 1) {
    SCCF_RETURN_NOT_OK(shard.index->Add(user, emb));
  } else {
    const bool was_empty = shard.pending->empty();
    shard.pending->Put(user, emb);
    if (was_empty) {
      shard.staged_since_ns.store(NowNs(), std::memory_order_release);
    }
    // Count threshold or age bound, whichever trips first — both drain
    // through the same bit-exact path while this write lock is held.
    if (shard.pending->size() >= options_.compaction_threshold ||
        ShardOverdue(shard)) {
      SCCF_RETURN_NOT_OK(DrainShardLocked(shard));
    }
  }
  timing->index_ms = index_clock.ElapsedMillis();
  shard.vote_items[user] = VoteItems(history);
  return Status::OK();
}

Status RealTimeService::Compact() {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.pending != nullptr && !shard.pending->empty()) {
      SCCF_RETURN_NOT_OK(DrainShardLocked(shard));
    }
  }
  return Status::OK();
}

Status RealTimeService::DrainShardLocked(const Shard& shard) const {
  const Status st = shard.pending->DrainTo(shard.index.get());
  // Cleared even on error: DrainTo empties the buffer regardless (a
  // failed Add there is a programming error, not recoverable input).
  shard.staged_since_ns.store(0, std::memory_order_release);
  return st;
}

bool RealTimeService::ShardOverdue(const Shard& shard) const {
  if (options_.compaction_interval_ms <= 0) return false;
  const int64_t since =
      shard.staged_since_ns.load(std::memory_order_acquire);
  if (since == 0) return false;
  return NowNs() - since >= options_.compaction_interval_ms * 1'000'000;
}

Status RealTimeService::StartBackgroundCompaction() {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (bg_running_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::lock_guard<std::mutex> guard(bg_mu_);
    bg_stop_ = false;
  }
  bg_running_.store(true, std::memory_order_release);
  bg_thread_ = std::thread([this] { BackgroundCompactionLoop(); });
  return Status::OK();
}

void RealTimeService::StopBackgroundCompaction() {
  if (!bg_running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> guard(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
  bg_running_.store(false, std::memory_order_release);
}

bool RealTimeService::background_compaction_running() const {
  return bg_running_.load(std::memory_order_acquire);
}

void RealTimeService::BackgroundCompactionLoop() {
  const auto period = std::chrono::milliseconds(
      SweepPeriodMs(options_.compaction_interval_ms));
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (true) {
    // Wakes early on stop; otherwise sweeps once per period. Spurious
    // wakeups just sweep early, which is harmless (drains are no-ops on
    // fresh or empty buffers).
    bg_cv_.wait_for(lock, period, [this] { return bg_stop_; });
    if (bg_stop_) return;
    lock.unlock();  // never hold bg_mu_ while taking a shard lock
    SweepShardsOnce();
    lock.lock();
  }
}

void RealTimeService::SweepShardsOnce() const {
  const bool age_gated = options_.compaction_interval_ms > 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    // Lock-free probe first: the sweep must not write-lock (and so
    // stall) shards with nothing to drain.
    const int64_t since =
        shard.staged_since_ns.load(std::memory_order_acquire);
    if (since == 0) continue;
    if (age_gated && !ShardOverdue(shard)) continue;
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.pending == nullptr || shard.pending->empty()) continue;
    if (age_gated && !ShardOverdue(shard)) continue;
    const Status st = DrainShardLocked(shard);
    SCCF_CHECK(st.ok()) << "background compaction drain failed: "
                        << st.message();
  }
}

size_t RealTimeService::pending_upserts() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    if (shard->pending != nullptr) total += shard->pending->size();
  }
  return total;
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::Neighbors(
    int user, size_t beta) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  const size_t effective_beta = beta == 0 ? options_.beta : beta;
  if (effective_beta == 0) {
    return Status::InvalidArgument("beta must be positive");
  }
  std::vector<float> emb(model_->embedding_dim(), 0.0f);
  {
    const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.histories.find(user);
    if (it == shard.histories.end() || it->second.empty()) {
      return Status::NotFound("user " + std::to_string(user) +
                              " has no history");
    }
    InferWindowEmbedding(it->second, emb.data());
  }
  return SearchAllShards(emb.data(), effective_beta, user);
}

StatusOr<CandidateList> RealTimeService::RecommendUserBased(
    int user, size_t n, size_t beta, bool exclude_seen) const {
  if (n == 0) {
    return Status::InvalidArgument("n must be positive");
  }
  SCCF_ASSIGN_OR_RETURN(std::vector<index::Neighbor> neighbors,
                        Neighbors(user, beta));
  std::vector<float> scores(model_->num_items(), 0.0f);
  // Accumulate in merged-neighbor order (identical float addition order
  // to the single-index implementation), taking the owning shard's read
  // lock per neighbor.
  for (const index::Neighbor& nb : neighbors) {
    const Shard& shard = *shards_[ShardIndex(nb.id, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto vi = shard.vote_items.find(nb.id);
    if (vi == shard.vote_items.end()) continue;
    for (int item : vi->second) scores[item] += nb.score;
  }
  if (exclude_seen) {
    const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto hist = shard.histories.find(user);
    if (hist != shard.histories.end()) {
      for (int item : hist->second) scores[item] = 0.0f;
    }
  }
  return TopNFromScores(scores, n, 0.0f);
}

StatusOr<std::vector<int>> RealTimeService::VoteItems(int user) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.vote_items.find(user);
  if (it == shard.vote_items.end()) {
    return Status::NotFound("user " + std::to_string(user) +
                            " has no votes");
  }
  return it->second;  // copies under the lock
}

StatusOr<std::vector<int>> RealTimeService::History(int user) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.histories.find(user);
  if (it == shard.histories.end()) {
    return Status::NotFound("user " + std::to_string(user) + " is unknown");
  }
  return it->second;  // copies under the lock
}

size_t RealTimeService::num_users() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->histories.size();
  }
  return total;
}

size_t RealTimeService::ShardOf(int user) const {
  SCCF_CHECK(!shards_.empty()) << "Bootstrap must run first";
  return ShardIndex(user, shards_.size());
}

namespace {

/// Shard payload framing shared by ExportShard/RestoreShard:
///   u64 journal_seq
///   u64 num_history_users | per user: i32 user | u64 len | i32 item x len
///   u64 num_vote_users    | per user: i32 user | u64 len | i32 item x len
///   u64-length-prefixed index blob (VectorIndex::SerializeTo)
///   u64 num_pending       | per row: i32 user | f32 x dim
void PutIntListMap(std::string* out,
                   const std::unordered_map<int, std::vector<int>>& map) {
  PutFixed64(out, static_cast<uint64_t>(map.size()));
  for (const auto& [user, items] : map) {
    PutI32(out, user);
    PutFixed64(out, static_cast<uint64_t>(items.size()));
    for (int item : items) PutI32(out, item);
  }
}

Status ReadIntListMap(ByteReader* reader, size_t shard_idx,
                      size_t num_shards, size_t max_item,
                      std::unordered_map<int, std::vector<int>>* map) {
  uint64_t count = 0;
  SCCF_RETURN_NOT_OK(reader->ReadFixed64(&count));
  if (count > reader->remaining() / 12) {  // >= 12 bytes per entry
    return Status::IoError("truncated shard payload (map size)");
  }
  map->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int32_t user = 0;
    uint64_t len = 0;
    SCCF_RETURN_NOT_OK(reader->ReadI32(&user));
    if (user < 0 || ShardIndex(user, num_shards) != shard_idx) {
      return Status::InvalidArgument("shard payload user in wrong shard");
    }
    SCCF_RETURN_NOT_OK(reader->ReadFixed64(&len));
    if (len > reader->remaining() / 4) {
      return Status::IoError("truncated shard payload (item list)");
    }
    std::vector<int> items;
    items.reserve(static_cast<size_t>(len));
    for (uint64_t j = 0; j < len; ++j) {
      int32_t item = 0;
      SCCF_RETURN_NOT_OK(reader->ReadI32(&item));
      if (item < 0 || static_cast<size_t>(item) >= max_item) {
        return Status::InvalidArgument("shard payload item out of range");
      }
      items.push_back(item);
    }
    if (!map->emplace(user, std::move(items)).second) {
      return Status::InvalidArgument("duplicate user in shard payload");
    }
  }
  return Status::OK();
}

}  // namespace

Status RealTimeService::ExportShard(size_t s, std::string* out) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (s >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  const Shard& shard = *shards_[s];
  const size_t d = model_->embedding_dim();
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  PutFixed64(out, shard.journal_seq);
  PutIntListMap(out, shard.histories);
  PutIntListMap(out, shard.vote_items);
  std::string index_blob;
  shard.index->SerializeTo(&index_blob);
  PutLengthPrefixed(out, index_blob);
  const index::UpsertBuffer& pending = *shard.pending;
  PutFixed64(out, static_cast<uint64_t>(pending.size()));
  for (size_t i = 0; i < pending.size(); ++i) {
    PutI32(out, pending.ids()[i]);
    PutFloats(out, pending.row(i), d);
  }
  return Status::OK();
}

Status RealTimeService::RestoreShard(size_t s, std::string_view payload) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (s >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  const size_t d = model_->embedding_dim();
  ByteReader reader(payload);

  uint64_t journal_seq = 0;
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&journal_seq));
  std::unordered_map<int, std::vector<int>> histories;
  std::unordered_map<int, std::vector<int>> vote_items;
  SCCF_RETURN_NOT_OK(ReadIntListMap(&reader, s, shards_.size(),
                                    model_->num_items(), &histories));
  SCCF_RETURN_NOT_OK(ReadIntListMap(&reader, s, shards_.size(),
                                    model_->num_items(), &vote_items));

  std::string_view index_blob;
  SCCF_RETURN_NOT_OK(reader.ReadLengthPrefixed(&index_blob));
  // Shard population is irrelevant here: the blob carries the serializing
  // index's own geometry (e.g. its bootstrap-clamped IVF nlist).
  std::unique_ptr<index::VectorIndex> index = MakeShardIndex(1);
  SCCF_RETURN_NOT_OK(index->DeserializeFrom(index_blob));

  uint64_t pending_count = 0;
  SCCF_RETURN_NOT_OK(reader.ReadFixed64(&pending_count));
  auto pending = std::make_unique<index::UpsertBuffer>(d, options_.metric,
                                                       options_.storage);
  std::vector<float> row;
  for (uint64_t i = 0; i < pending_count; ++i) {
    int32_t user = 0;
    SCCF_RETURN_NOT_OK(reader.ReadI32(&user));
    if (user < 0 || ShardIndex(user, shards_.size()) != s) {
      return Status::InvalidArgument("staged row user in wrong shard");
    }
    SCCF_RETURN_NOT_OK(reader.ReadFloats(d, &row));
    // Put in serialized (= first-Put) order, so a later drain hands the
    // backend the identical Add sequence an uninterrupted run would.
    pending->Put(user, row.data());
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes in shard payload");
  }

  Shard& shard = *shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.histories = std::move(histories);
  shard.vote_items = std::move(vote_items);
  shard.index = std::move(index);
  const bool has_pending = !pending->empty();
  shard.pending = std::move(pending);
  // Restored staged rows restart their age clock at "now": their original
  // stamps are meaningless on this boot's monotonic clock, and a zero
  // stamp on a non-empty buffer would hide it from the sweep forever.
  shard.staged_since_ns.store(has_pending ? NowNs() : 0,
                              std::memory_order_release);
  shard.journal_seq = journal_seq;
  return Status::OK();
}

Status RealTimeService::ApplyJournalRecord(size_t s, uint64_t seq,
                                           std::span<const Event> events) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (s >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  // A journal record passed CRC framing but its contents are still
  // untrusted bytes from disk; range errors are corruption (IoError),
  // mirroring OnInteractionBatch's validate-before-mutate discipline.
  for (const Event& e : events) {
    if (e.user < 0 || ShardIndex(e.user, shards_.size()) != s) {
      return Status::IoError("journal record user in wrong shard");
    }
    if (e.item < 0 || static_cast<size_t>(e.item) >= model_->num_items()) {
      return Status::IoError("journal record item out of range");
    }
  }

  Shard& shard = *shards_[s];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (seq <= shard.journal_seq) {
    return Status::OK();  // already covered by the restored snapshot
  }
  if (seq != shard.journal_seq + 1) {
    return Status::IoError("journal sequence gap: shard expects " +
                           std::to_string(shard.journal_seq + 1) +
                           ", record carries " + std::to_string(seq));
  }
  shard.journal_seq = seq;

  // Same two passes as OnInteractionBatch's per-shard section — append
  // all events, then refresh each touched user once from their final
  // history — so replayed state is bit-identical to the original apply.
  const size_t d = model_->embedding_dim();
  std::vector<int> touched;
  std::unordered_map<int, bool> seen;
  for (const Event& e : events) {
    auto [hist_it, created] = shard.histories.try_emplace(e.user);
    hist_it->second.push_back(e.item);
    (void)created;
    if (seen.emplace(e.user, true).second) touched.push_back(e.user);
  }
  std::vector<float> emb(d, 0.0f);
  UpdateTiming timing;
  for (int user : touched) {
    SCCF_RETURN_NOT_OK(RefreshTouchedUser(shard, user, emb.data(), &timing));
  }
  return Status::OK();
}

uint64_t RealTimeService::ShardJournalSeq(size_t s) const {
  SCCF_CHECK_LT(s, shards_.size()) << "shard index out of range";
  const Shard& shard = *shards_[s];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.journal_seq;
}

std::vector<RealTimeService::ShardStats>
RealTimeService::ShardStatsSnapshot() const {
  std::vector<ShardStats> stats(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    ShardStats& st = stats[s];
    st.users = shard.histories.size();
    st.index_rows = shard.index != nullptr ? shard.index->size() : 0;
    if (shard.index != nullptr) {
      const index::IndexMemoryStats mem = shard.index->memory_stats();
      st.embedding_bytes = mem.embedding_bytes;
      st.code_bytes = mem.code_bytes;
      st.tombstones = mem.tombstones;
    }
    st.staged_rows = shard.pending != nullptr ? shard.pending->size() : 0;
  }
  return stats;
}

std::vector<size_t> RealTimeService::ShardSizes() const {
  std::vector<size_t> sizes(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s]->mu);
    sizes[s] = shards_[s]->histories.size();
  }
  return sizes;
}

}  // namespace sccf::core
