#include "core/realtime.h"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/topk_merge.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sccf::core {

namespace {

/// splitmix64 finalizer: a fixed, platform-independent user -> shard map
/// (std::hash<int> is identity on libstdc++, which would turn "users 0..T
/// round-robin" workloads into a single hot shard under modulo).
size_t ShardIndex(int user, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(user));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

}  // namespace

RealTimeService::RealTimeService(const models::InductiveUiModel& model,
                                 Options options)
    : model_(&model), options_(options) {
  SCCF_CHECK_GT(model_->num_items(), 0u) << "model must be fitted";
}

void RealTimeService::InferWindowEmbedding(const std::vector<int>& history,
                                           float* out) const {
  const size_t take = options_.infer_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.infer_window);
  model_->InferUserEmbedding(
      std::span<const int>(history.data() + history.size() - take, take),
      out);
}

std::vector<int> RealTimeService::VoteItems(
    const std::vector<int>& history) const {
  const size_t take = options_.vote_window == 0
                          ? history.size()
                          : std::min(history.size(), options_.vote_window);
  std::vector<int> votes(history.end() - take, history.end());
  std::sort(votes.begin(), votes.end());
  votes.erase(std::unique(votes.begin(), votes.end()), votes.end());
  return votes;
}

std::unique_ptr<index::VectorIndex> RealTimeService::MakeShardIndex(
    size_t shard_population) const {
  const size_t d = model_->embedding_dim();
  switch (options_.index_kind) {
    case IndexKind::kBruteForce:
      return std::make_unique<index::BruteForceIndex>(d, options_.metric);
    case IndexKind::kIvfFlat: {
      index::IvfFlatIndex::Options ivf = options_.ivf;
      ivf.nlist = std::min(ivf.nlist, std::max<size_t>(1, shard_population));
      return std::make_unique<index::IvfFlatIndex>(d, options_.metric, ivf);
    }
    case IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(d, options_.metric,
                                                options_.hnsw);
  }
  return nullptr;  // unreachable
}

Status RealTimeService::BuildShard(
    Shard* shard, const std::vector<const UserState*>& users) const {
  const size_t d = model_->embedding_dim();
  shard->index = MakeShardIndex(users.size());

  std::vector<float> embeddings(users.size() * d, 0.0f);
  for (size_t i = 0; i < users.size(); ++i) {
    const UserState& s = *users[i];
    if (!s.history.empty()) {
      InferWindowEmbedding(s.history, embeddings.data() + i * d);
      shard->vote_items[s.user] = VoteItems(s.history);
    }
    shard->histories[s.user] = s.history;
  }
  if (options_.index_kind == IndexKind::kIvfFlat) {
    auto* ivf = static_cast<index::IvfFlatIndex*>(shard->index.get());
    if (users.empty()) {
      // Train a one-centroid quantizer on the origin so cold-start users
      // landing in this shard can still be added and searched.
      std::vector<float> zero(d, 0.0f);
      SCCF_RETURN_NOT_OK(ivf->Train(zero, 1));
    } else {
      SCCF_RETURN_NOT_OK(ivf->Train(embeddings, users.size()));
    }
  }
  for (size_t i = 0; i < users.size(); ++i) {
    SCCF_RETURN_NOT_OK(
        shard->index->Add(users[i]->user, embeddings.data() + i * d));
  }
  return Status::OK();
}

Status RealTimeService::Bootstrap(const std::vector<UserState>& users) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap may be called once");
  }
  for (const UserState& s : users) {
    if (s.user < 0) return Status::InvalidArgument("negative user id");
  }

  size_t num_shards = options_.num_shards;
  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  shards_.clear();
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }

  // Partition preserving input order, so per-shard insertion order (and
  // therefore index state) is deterministic for a given input.
  std::vector<std::vector<const UserState*>> partition(num_shards);
  for (const UserState& s : users) {
    partition[ShardIndex(s.user, num_shards)].push_back(&s);
  }

  std::vector<Status> shard_status(num_shards);
  ParallelFor(0, num_shards, [&](size_t s) {
    shard_status[s] = BuildShard(shards_[s].get(), partition[s]);
  });
  for (const Status& st : shard_status) {
    if (!st.ok()) return st;
  }
  bootstrapped_ = true;
  return Status::OK();
}

Status RealTimeService::BootstrapFromSplit(
    const data::LeaveOneOutSplit& split) {
  std::vector<UserState> users(split.num_users());
  for (size_t u = 0; u < split.num_users(); ++u) {
    users[u].user = static_cast<int>(u);
    const std::span<const int> h = split.TrainSequence(u);
    users[u].history.assign(h.begin(), h.end());
  }
  return Bootstrap(users);
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::SearchAllShards(
    const float* query, size_t k, int exclude_user) const {
  if (shards_.size() == 1) {  // single-shard fast path: no merge layer
    const Shard& shard = *shards_[0];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    return shard.index->Search(query, k, exclude_user);
  }
  std::vector<std::vector<index::Neighbor>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    SCCF_ASSIGN_OR_RETURN(per_shard[s],
                          shard.index->Search(query, k, exclude_user));
  }
  return MergeTopK(std::move(per_shard), k);
}

StatusOr<RealTimeService::UpdateTiming> RealTimeService::OnInteraction(
    int user, int item) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  if (item < 0 || static_cast<size_t>(item) >= model_->num_items()) {
    return Status::InvalidArgument("unknown item " + std::to_string(item));
  }

  UpdateTiming timing;
  const size_t d = model_->embedding_dim();
  std::vector<float> emb(d, 0.0f);

  Shard& shard = *shards_[ShardIndex(user, shards_.size())];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    std::vector<int>& history = shard.histories[user];  // cold start: creates
    history.push_back(item);

    Stopwatch infer_clock;
    InferWindowEmbedding(history, emb.data());
    timing.infer_ms = infer_clock.ElapsedMillis();

    Stopwatch index_clock;
    SCCF_RETURN_NOT_OK(shard.index->Add(user, emb.data()));
    timing.index_ms = index_clock.ElapsedMillis();
    shard.vote_items[user] = VoteItems(history);
  }

  // Identify outside the write lock: the fresh neighborhood spans every
  // shard, and holding a write lock while taking other shards' read locks
  // would serialize ingest (and risk deadlock by lock-order inversion).
  Stopwatch identify_clock;
  SCCF_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      SearchAllShards(emb.data(), options_.beta, user));
  (void)neighbors;
  timing.identify_ms = identify_clock.ElapsedMillis();
  return timing;
}

StatusOr<std::vector<index::Neighbor>> RealTimeService::Neighbors(
    int user) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  std::vector<float> emb(model_->embedding_dim(), 0.0f);
  {
    const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.histories.find(user);
    if (it == shard.histories.end() || it->second.empty()) {
      return Status::NotFound("user " + std::to_string(user) +
                              " has no history");
    }
    InferWindowEmbedding(it->second, emb.data());
  }
  return SearchAllShards(emb.data(), options_.beta, user);
}

StatusOr<CandidateList> RealTimeService::RecommendUserBased(int user,
                                                            size_t n) const {
  SCCF_ASSIGN_OR_RETURN(std::vector<index::Neighbor> neighbors,
                        Neighbors(user));
  std::vector<float> scores(model_->num_items(), 0.0f);
  // Accumulate in merged-neighbor order (identical float addition order
  // to the single-index implementation), taking the owning shard's read
  // lock per neighbor.
  for (const index::Neighbor& nb : neighbors) {
    const Shard& shard = *shards_[ShardIndex(nb.id, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto vi = shard.vote_items.find(nb.id);
    if (vi == shard.vote_items.end()) continue;
    for (int item : vi->second) scores[item] += nb.score;
  }
  {
    const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto hist = shard.histories.find(user);
    if (hist != shard.histories.end()) {
      for (int item : hist->second) scores[item] = 0.0f;
    }
  }
  return TopNFromScores(scores, n, 0.0f);
}

StatusOr<std::vector<int>> RealTimeService::History(int user) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("Bootstrap must run first");
  }
  const Shard& shard = *shards_[ShardIndex(user, shards_.size())];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.histories.find(user);
  if (it == shard.histories.end()) {
    return Status::NotFound("user " + std::to_string(user) + " is unknown");
  }
  return it->second;  // copies under the lock
}

size_t RealTimeService::num_users() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->histories.size();
  }
  return total;
}

size_t RealTimeService::ShardOf(int user) const {
  SCCF_CHECK(!shards_.empty()) << "Bootstrap must run first";
  return ShardIndex(user, shards_.size());
}

std::vector<size_t> RealTimeService::ShardSizes() const {
  std::vector<size_t> sizes(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s]->mu);
    sizes[s] = shards_[s]->histories.size();
  }
  return sizes;
}

}  // namespace sccf::core
