#include "core/profile_neighborhood.h"

#include "util/logging.h"

namespace sccf::core {

ProfileAwareNeighborhood::ProfileAwareNeighborhood(
    const index::VectorIndex* index, std::vector<std::vector<int>> profiles,
    Options options)
    : index_(index), profiles_(std::move(profiles)), options_(options) {
  SCCF_CHECK(index_ != nullptr);
  SCCF_CHECK_GE(options_.profile_weight, 0.0f);
  SCCF_CHECK_LT(options_.profile_weight, 1.0f);
  SCCF_CHECK_GE(options_.expansion, 1u);
}

float ProfileAwareNeighborhood::ProfileAgreement(const std::vector<int>& a,
                                                 const std::vector<int>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0f;
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  return static_cast<float>(same) / a.size();
}

StatusOr<std::vector<index::Neighbor>> ProfileAwareNeighborhood::Neighbors(
    const float* query_embedding, const std::vector<int>& query_profile,
    size_t beta, int exclude_user) const {
  if (beta == 0) return Status::InvalidArgument("beta must be positive");
  SCCF_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> fetched,
      index_->Search(query_embedding, beta * options_.expansion,
                     exclude_user));

  const float w = options_.profile_weight;
  index::TopKAccumulator acc(beta);
  for (const index::Neighbor& nb : fetched) {
    float agreement = 0.0f;
    if (nb.id >= 0 && static_cast<size_t>(nb.id) < profiles_.size()) {
      agreement = ProfileAgreement(query_profile, profiles_[nb.id]);
    }
    acc.Offer(nb.id, (1.0f - w) * nb.score + w * agreement);
  }
  return acc.Take();
}

}  // namespace sccf::core
