// AVX-512F variant of the kernel table, compiled with -mavx512f only (see
// CMakeLists.txt); remainders use masked loads/stores so there is no
// scalar tail. Nothing here may be called unless the dispatcher verified
// CPUID support; without compiler support the table degrades to nullptr.

#include "simd/kernel_table.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace sccf::simd::internal {

#if defined(__AVX512F__)

namespace {

inline __mmask16 TailMask(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

float DotAvx512(const float* a, const float* b, size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SquaredL2Avx512(const float* a, const float* b, size_t n) {
  __m512 acc = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                   _mm512_maskz_loadu_ps(m, b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void AxpyAvx512(float alpha, const float* x, float* y, size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i),
                               _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 r = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, x + i),
                                     _mm512_maskz_loadu_ps(m, y + i));
    _mm512_mask_storeu_ps(y + i, m, r);
  }
}

void DotBatchAvx512(const float* q, const float* base, size_t count,
                    size_t dim, float* out) {
  // Four rows per block share each 16-wide query load (see the AVX2
  // variant for rationale); masked loads handle the dim remainder.
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const float* r0 = base + (r + 0) * dim;
    const float* r1 = base + (r + 1) * dim;
    const float* r2 = base + (r + 2) * dim;
    const float* r3 = base + (r + 3) * dim;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m512 vq = _mm512_loadu_ps(q + i);
      a0 = _mm512_fmadd_ps(_mm512_loadu_ps(r0 + i), vq, a0);
      a1 = _mm512_fmadd_ps(_mm512_loadu_ps(r1 + i), vq, a1);
      a2 = _mm512_fmadd_ps(_mm512_loadu_ps(r2 + i), vq, a2);
      a3 = _mm512_fmadd_ps(_mm512_loadu_ps(r3 + i), vq, a3);
    }
    if (i < dim) {
      const __mmask16 m = TailMask(dim - i);
      const __m512 vq = _mm512_maskz_loadu_ps(m, q + i);
      a0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, r0 + i), vq, a0);
      a1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, r1 + i), vq, a1);
      a2 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, r2 + i), vq, a2);
      a3 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, r3 + i), vq, a3);
    }
    out[r + 0] = _mm512_reduce_add_ps(a0);
    out[r + 1] = _mm512_reduce_add_ps(a1);
    out[r + 2] = _mm512_reduce_add_ps(a2);
    out[r + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; r < count; ++r) out[r] = DotAvx512(q, base + r * dim, dim);
}

void ScatterAddConstantAvx512(float* dst, const int* idx, size_t n,
                              float v) {
  // Gather / add / scatter. Correct only because callers guarantee unique
  // indices per call (duplicates inside one 16-lane batch would collapse
  // to a single increment) — documented on the public API.
  const __m512 vv = _mm512_set1_ps(v);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vidx =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx + i));
    const __m512 cur = _mm512_i32gather_ps(vidx, dst, 4);
    _mm512_i32scatter_ps(dst, vidx, _mm512_add_ps(cur, vv), 4);
  }
  for (; i < n; ++i) dst[idx[i]] += v;
}

/// Widen 16 int8 codes to a 16-lane fp32 vector. The 128-bit load is
/// SSE2 and the sign-extending VPMOVSXBD to zmm is AVX512F, so this TU's
/// -mavx512f-only flag set suffices. Byte-granular masked loads would
/// need AVX512BW, which is deliberately not enabled here — int8 tails
/// fall back to scalar instead of masking.
inline __m512 LoadI8AsPs512(const int8_t* p) {
  const __m128i bytes =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(bytes));
}

float DotI8Avx512(const float* q, const int8_t* c, size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i), LoadI8AsPs512(c + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i + 16),
                           LoadI8AsPs512(c + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i), LoadI8AsPs512(c + i),
                           acc0);
  }
  float acc = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += q[i] * static_cast<float>(c[i]);
  return acc;
}

void DotBatchI8Avx512(const float* q, const int8_t* base, size_t count,
                      size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const int8_t* r0 = base + (r + 0) * dim;
    const int8_t* r1 = base + (r + 1) * dim;
    const int8_t* r2 = base + (r + 2) * dim;
    const int8_t* r3 = base + (r + 3) * dim;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m512 vq = _mm512_loadu_ps(q + i);
      a0 = _mm512_fmadd_ps(LoadI8AsPs512(r0 + i), vq, a0);
      a1 = _mm512_fmadd_ps(LoadI8AsPs512(r1 + i), vq, a1);
      a2 = _mm512_fmadd_ps(LoadI8AsPs512(r2 + i), vq, a2);
      a3 = _mm512_fmadd_ps(LoadI8AsPs512(r3 + i), vq, a3);
    }
    float s0 = _mm512_reduce_add_ps(a0);
    float s1 = _mm512_reduce_add_ps(a1);
    float s2 = _mm512_reduce_add_ps(a2);
    float s3 = _mm512_reduce_add_ps(a3);
    for (; i < dim; ++i) {
      const float vq = q[i];
      s0 += static_cast<float>(r0[i]) * vq;
      s1 += static_cast<float>(r1[i]) * vq;
      s2 += static_cast<float>(r2[i]) * vq;
      s3 += static_cast<float>(r3[i]) * vq;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < count; ++r) out[r] = DotI8Avx512(q, base + r * dim, dim);
}

}  // namespace

const KernelTable* Avx512Table() {
  static const KernelTable table = {
      &DotAvx512, &SquaredL2Avx512, &AxpyAvx512, &DotBatchAvx512,
      &ScatterAddConstantAvx512, &DotI8Avx512, &DotBatchI8Avx512,
  };
  return &table;
}

#else  // !__AVX512F__

const KernelTable* Avx512Table() { return nullptr; }

#endif

}  // namespace sccf::simd::internal
