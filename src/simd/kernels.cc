#include "simd/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "simd/kernel_table.h"
#include "util/logging.h"

namespace sccf::simd {

namespace internal {

float DotScalar(const float* a, const float* b, size_t n) {
  // Four independent accumulators: enough ILP that the scalar reference is
  // a fair baseline, and bit-identical to the pre-SIMD tensor_ops::Dot.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredL2Scalar(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float t = a[i] - b[i];
    acc += t * t;
  }
  return acc;
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void DotBatchScalar(const float* q, const float* base, size_t count,
                    size_t dim, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotScalar(q, base + r * dim, dim);
  }
}

void ScatterAddConstantScalar(float* dst, const int* idx, size_t n,
                              float v) {
  for (size_t i = 0; i < n; ++i) dst[idx[i]] += v;
}

float DotI8Scalar(const float* q, const int8_t* c, size_t n) {
  // Same four-accumulator shape as DotScalar so the int8 scalar baseline
  // is a fair reference for the widened-FMA variants.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += q[i] * static_cast<float>(c[i]);
    acc1 += q[i + 1] * static_cast<float>(c[i + 1]);
    acc2 += q[i + 2] * static_cast<float>(c[i + 2]);
    acc3 += q[i + 3] * static_cast<float>(c[i + 3]);
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < n; ++i) acc += q[i] * static_cast<float>(c[i]);
  return acc;
}

void DotBatchI8Scalar(const float* q, const int8_t* base, size_t count,
                      size_t dim, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotI8Scalar(q, base + r * dim, dim);
  }
}

const KernelTable* ScalarTable() {
  static const KernelTable table = {
      &DotScalar, &SquaredL2Scalar, &AxpyScalar, &DotBatchScalar,
      &ScatterAddConstantScalar, &DotI8Scalar, &DotBatchI8Scalar,
  };
  return &table;
}

}  // namespace internal

namespace {

using internal::KernelTable;

bool CpuSupports(Variant v) {
#if defined(__x86_64__) || defined(__i386__)
  switch (v) {
    case Variant::kScalar:
      return true;
    case Variant::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Variant::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return v == Variant::kScalar;
#endif
}

const KernelTable* TableFor(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return internal::ScalarTable();
    case Variant::kAvx2:
      return internal::Avx2Table();
    case Variant::kAvx512:
      return internal::Avx512Table();
  }
  return nullptr;
}

Variant BestSupported() {
  if (VariantSupported(Variant::kAvx512)) return Variant::kAvx512;
  if (VariantSupported(Variant::kAvx2)) return Variant::kAvx2;
  return Variant::kScalar;
}

std::mutex& DispatchMutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_variant{static_cast<int>(Variant::kScalar)};

void Activate(Variant v) {
  // Publish the table before the variant name so a concurrent reader never
  // sees a variant whose table is not yet visible.
  g_table.store(TableFor(v), std::memory_order_release);
  g_variant.store(static_cast<int>(v), std::memory_order_release);
}

bool ParseVariant(const char* s, Variant* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Variant::kScalar;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Variant::kAvx2;
  } else if (std::strcmp(s, "avx512") == 0) {
    *out = Variant::kAvx512;
  } else {
    return false;
  }
  return true;
}

const KernelTable& ActiveTable() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    ResetVariantFromEnv();
    t = g_table.load(std::memory_order_acquire);
  }
  return *t;
}

}  // namespace

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool VariantSupported(Variant v) {
  return TableFor(v) != nullptr && CpuSupports(v);
}

Variant ActiveVariant() {
  if (g_table.load(std::memory_order_acquire) == nullptr) {
    ResetVariantFromEnv();
  }
  return static_cast<Variant>(g_variant.load(std::memory_order_acquire));
}

Status ForceVariant(Variant v) {
  if (!VariantSupported(v)) {
    return Status::InvalidArgument(
        std::string("SIMD variant not supported on this build/CPU: ") +
        VariantName(v));
  }
  std::lock_guard<std::mutex> lock(DispatchMutex());
  Activate(v);
  return Status::OK();
}

void ResetVariantFromEnv() {
  std::lock_guard<std::mutex> lock(DispatchMutex());
  Variant v = BestSupported();
  const char* env = std::getenv("SCCF_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Variant requested;
    if (!ParseVariant(env, &requested)) {
      SCCF_LOG_WARNING << "SCCF_SIMD=" << env
                       << " is not one of scalar|avx2|avx512; using "
                       << VariantName(v);
    } else if (!VariantSupported(requested)) {
      SCCF_LOG_WARNING << "SCCF_SIMD=" << env
                       << " not supported on this build/CPU; using "
                       << VariantName(v);
    } else {
      v = requested;
    }
  }
  Activate(v);
}

float Dot(const float* a, const float* b, size_t n) {
  return ActiveTable().dot(a, b, n);
}

float SquaredL2(const float* a, const float* b, size_t n) {
  return ActiveTable().squared_l2(a, b, n);
}

float Norm(const float* a, size_t n) {
  return std::sqrt(std::max(0.0f, Dot(a, a, n)));
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  ActiveTable().axpy(alpha, x, y, n);
}

void NormalizeCopy(const float* in, float* out, size_t n) {
  const float norm = Norm(in, n);
  const float inv = norm > 0.0f ? 1.0f / norm : 0.0f;
  for (size_t i = 0; i < n; ++i) out[i] = in[i] * inv;
}

void NormalizeInPlace(float* v, size_t n) {
  const float norm = Norm(v, n);
  if (norm > 0.0f) {
    const float inv = 1.0f / norm;
    for (size_t i = 0; i < n; ++i) v[i] *= inv;
  }
}

void DotBatch(const float* q, const float* base, size_t count, size_t dim,
              float* out) {
  ActiveTable().dot_batch(q, base, count, dim, out);
}

namespace {

// Mirror of index::TopKAccumulator's heap (min-heap on score; among equal
// scores the larger id is evicted first). Duplicated here because the simd
// layer sits below index/ in the DAG; the parity test pins the two
// behaviors together.
struct RowScore {
  int row;
  float score;
};

struct MinHeapCmp {
  bool operator()(const RowScore& a, const RowScore& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  }
};

}  // namespace

void TopKDot(const float* q, const float* base, size_t count, size_t dim,
             size_t k, ptrdiff_t exclude_row,
             std::vector<std::pair<int, float>>* out) {
  out->clear();
  if (k == 0 || count == 0) return;

  constexpr size_t kBlock = 256;
  float scores[kBlock];
  std::vector<RowScore> heap;
  heap.reserve(k + 1);

  const KernelTable& table = ActiveTable();
  for (size_t lo = 0; lo < count; lo += kBlock) {
    const size_t len = std::min(kBlock, count - lo);
    table.dot_batch(q, base + lo * dim, len, dim, scores);
    for (size_t j = 0; j < len; ++j) {
      const size_t row = lo + j;
      if (static_cast<ptrdiff_t>(row) == exclude_row) continue;
      const float s = scores[j];
      if (heap.size() < k) {
        heap.push_back({static_cast<int>(row), s});
        std::push_heap(heap.begin(), heap.end(), MinHeapCmp());
        continue;
      }
      if (s <= heap.front().score) continue;
      std::pop_heap(heap.begin(), heap.end(), MinHeapCmp());
      heap.back() = {static_cast<int>(row), s};
      std::push_heap(heap.begin(), heap.end(), MinHeapCmp());
    }
  }

  std::sort(heap.begin(), heap.end(), [](const RowScore& a,
                                         const RowScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  });
  out->reserve(heap.size());
  for (const RowScore& rs : heap) out->emplace_back(rs.row, rs.score);
}

void ScatterAddConstant(float* dst, const int* idx, size_t n, float v) {
  ActiveTable().scatter_add_constant(dst, idx, n, v);
}

float DotI8(const float* q, const int8_t* c, size_t n) {
  return ActiveTable().dot_i8(q, c, n);
}

void DotBatchI8(const float* q, const int8_t* base, size_t count,
                size_t dim, float* out) {
  ActiveTable().dot_batch_i8(q, base, count, dim, out);
}

float CosineI8(const float* q, const int8_t* c, size_t n, float scale,
               float offset, float qsum) {
  const float nq = Norm(q, n);
  if (nq == 0.0f) return 0.0f;
  // ||decoded||^2 = scale^2*sum(c^2) + 2*scale*offset*sum(c) + offset^2*n.
  // sum(c) / sum(c^2) stay scalar: int8 codes make this loop cheap and it
  // keeps the norm bit-identical across variants (only the raw dot below
  // goes through the dispatch table).
  float sum_c = 0.0f, sum_c2 = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float v = static_cast<float>(c[i]);
    sum_c += v;
    sum_c2 += v * v;
  }
  const float norm_sq = scale * scale * sum_c2 +
                        2.0f * scale * offset * sum_c +
                        offset * offset * static_cast<float>(n);
  const float nr = std::sqrt(std::max(0.0f, norm_sq));
  if (nr == 0.0f) return 0.0f;
  const float dot = scale * ActiveTable().dot_i8(q, c, n) + offset * qsum;
  return dot / (nq * nr);
}

void TopKDotI8(const float* q, const int8_t* base, size_t count, size_t dim,
               const float* scales, const float* offsets, float qsum,
               size_t k, ptrdiff_t exclude_row,
               std::vector<std::pair<int, float>>* out) {
  out->clear();
  if (k == 0 || count == 0) return;

  constexpr size_t kBlock = 256;
  float raw[kBlock];
  std::vector<RowScore> heap;
  heap.reserve(k + 1);

  const KernelTable& table = ActiveTable();
  for (size_t lo = 0; lo < count; lo += kBlock) {
    const size_t len = std::min(kBlock, count - lo);
    table.dot_batch_i8(q, base + lo * dim, len, dim, raw);
    for (size_t j = 0; j < len; ++j) {
      const size_t row = lo + j;
      if (static_cast<ptrdiff_t>(row) == exclude_row) continue;
      const float s = scales[row] * raw[j] + offsets[row] * qsum;
      if (heap.size() < k) {
        heap.push_back({static_cast<int>(row), s});
        std::push_heap(heap.begin(), heap.end(), MinHeapCmp());
        continue;
      }
      if (s <= heap.front().score) continue;
      std::pop_heap(heap.begin(), heap.end(), MinHeapCmp());
      heap.back() = {static_cast<int>(row), s};
      std::push_heap(heap.begin(), heap.end(), MinHeapCmp());
    }
  }

  std::sort(heap.begin(), heap.end(), [](const RowScore& a,
                                         const RowScore& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  });
  out->reserve(heap.size());
  for (const RowScore& rs : heap) out->emplace_back(rs.row, rs.score);
}

}  // namespace sccf::simd
