#ifndef SCCF_SIMD_KERNEL_TABLE_H_
#define SCCF_SIMD_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>

namespace sccf::simd::internal {

/// Function-pointer table for one SIMD variant. The dispatcher in
/// kernels.cc resolves exactly one table at startup (or on SCCF_SIMD /
/// ForceVariant override) and every public kernel routes through it.
///
/// Only the primitives that differ per ISA live here; derived kernels
/// (Cosine, Norm, NormalizeCopy/InPlace, TopKDot) are built on top of
/// these in kernels.cc so policy — e.g. the zero-norm guard — has exactly
/// one definition regardless of variant.
struct KernelTable {
  /// Inner product of two length-n arrays.
  float (*dot)(const float* a, const float* b, size_t n);
  /// sum_i (a[i] - b[i])^2.
  float (*squared_l2)(const float* a, const float* b, size_t n);
  /// y += alpha * x, length n.
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  /// out[r] = dot(q, base + r*dim) for r in [0, count). Rows are
  /// register-blocked so the query vector is loaded once per block.
  void (*dot_batch)(const float* q, const float* base, size_t count,
                    size_t dim, float* out);
  /// dst[idx[i]] += v for i in [0, n). Pre: idx values are unique within
  /// one call (the AVX-512 gather/add/scatter path loses increments on
  /// duplicates inside a 16-lane batch).
  void (*scatter_add_constant)(float* dst, const int* idx, size_t n,
                               float v);
  /// Raw inner product of an fp32 query against a length-n int8 code row:
  /// sum_i q[i] * c[i], accumulated in fp32. The affine SQ8 correction
  /// (scale * raw + offset * sum(q)) is applied by the derived kernels in
  /// kernels.cc, not here, so each variant only widens and multiplies.
  float (*dot_i8)(const float* q, const int8_t* c, size_t n);
  /// out[r] = dot_i8(q, base + r*dim) for r in [0, count). Rows are
  /// register-blocked like dot_batch.
  void (*dot_batch_i8)(const float* q, const int8_t* base, size_t count,
                       size_t dim, float* out);
};

/// Always available; the reference implementation every variant must match.
const KernelTable* ScalarTable();
/// Return the variant's table, or nullptr when the compiler could not
/// target the ISA (table presence says nothing about the running CPU —
/// the dispatcher checks CPUID separately).
const KernelTable* Avx2Table();
const KernelTable* Avx512Table();

/// Scalar building blocks reused by variant tables for ops an ISA does not
/// accelerate (e.g. AVX2 has gathers but no scatters).
float DotScalar(const float* a, const float* b, size_t n);
float SquaredL2Scalar(const float* a, const float* b, size_t n);
void AxpyScalar(float alpha, const float* x, float* y, size_t n);
void DotBatchScalar(const float* q, const float* base, size_t count,
                    size_t dim, float* out);
void ScatterAddConstantScalar(float* dst, const int* idx, size_t n, float v);
float DotI8Scalar(const float* q, const int8_t* c, size_t n);
void DotBatchI8Scalar(const float* q, const int8_t* base, size_t count,
                      size_t dim, float* out);

}  // namespace sccf::simd::internal

#endif  // SCCF_SIMD_KERNEL_TABLE_H_
