// AVX2+FMA variant of the kernel table. This translation unit is the only
// one compiled with -mavx2 -mfma (see the simd layer in CMakeLists.txt);
// nothing here may be called unless the dispatcher verified CPUID support.
// When the compiler cannot target AVX2 the table degrades to nullptr and
// the dispatcher never selects this variant.

#include "simd/kernel_table.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace sccf::simd::internal {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredL2Avx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float out = HorizontalSum(acc);
  for (; i < n; ++i) {
    const float t = a[i] - b[i];
    out += t * t;
  }
  return out;
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void DotBatchAvx2(const float* q, const float* base, size_t count,
                  size_t dim, float* out) {
  // Four rows per block: each query load feeds four FMAs, which roughly
  // quarters the load traffic of row-at-a-time scanning.
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const float* r0 = base + (r + 0) * dim;
    const float* r1 = base + (r + 1) * dim;
    const float* r2 = base + (r + 2) * dim;
    const float* r3 = base + (r + 3) * dim;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 vq = _mm256_loadu_ps(q + i);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + i), vq, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + i), vq, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + i), vq, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + i), vq, a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; i < dim; ++i) {
      const float vq = q[i];
      s0 += r0[i] * vq;
      s1 += r1[i] * vq;
      s2 += r2[i] * vq;
      s3 += r3[i] * vq;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < count; ++r) out[r] = DotAvx2(q, base + r * dim, dim);
}

/// Widen 8 int8 codes to an fp32 lane vector: 64-bit load, sign-extend to
/// epi32, convert. One load feeds one FMA against the fp32 query.
inline __m256 LoadI8AsPs(const int8_t* p) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
}

float DotI8Avx2(const float* q, const int8_t* c, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadI8AsPs(c + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i + 8), LoadI8AsPs(c + i + 8),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), LoadI8AsPs(c + i), acc0);
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += q[i] * static_cast<float>(c[i]);
  return acc;
}

void DotBatchI8Avx2(const float* q, const int8_t* base, size_t count,
                    size_t dim, float* out) {
  // Same four-rows-per-block shape as DotBatchAvx2: each query load feeds
  // four widened FMAs.
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const int8_t* r0 = base + (r + 0) * dim;
    const int8_t* r1 = base + (r + 1) * dim;
    const int8_t* r2 = base + (r + 2) * dim;
    const int8_t* r3 = base + (r + 3) * dim;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 vq = _mm256_loadu_ps(q + i);
      a0 = _mm256_fmadd_ps(LoadI8AsPs(r0 + i), vq, a0);
      a1 = _mm256_fmadd_ps(LoadI8AsPs(r1 + i), vq, a1);
      a2 = _mm256_fmadd_ps(LoadI8AsPs(r2 + i), vq, a2);
      a3 = _mm256_fmadd_ps(LoadI8AsPs(r3 + i), vq, a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; i < dim; ++i) {
      const float vq = q[i];
      s0 += static_cast<float>(r0[i]) * vq;
      s1 += static_cast<float>(r1[i]) * vq;
      s2 += static_cast<float>(r2[i]) * vq;
      s3 += static_cast<float>(r3[i]) * vq;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < count; ++r) out[r] = DotI8Avx2(q, base + r * dim, dim);
}

}  // namespace

const KernelTable* Avx2Table() {
  static const KernelTable table = {
      &DotAvx2, &SquaredL2Avx2, &AxpyAvx2, &DotBatchAvx2,
      // AVX2 has gathers but no scatters; the scalar loop is already
      // store-bound, so keep the reference implementation.
      &ScatterAddConstantScalar,
      &DotI8Avx2, &DotBatchI8Avx2,
  };
  return &table;
}

#else  // !(__AVX2__ && __FMA__)

const KernelTable* Avx2Table() { return nullptr; }

#endif

}  // namespace sccf::simd::internal
