#ifndef SCCF_SIMD_KERNELS_H_
#define SCCF_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

/// Runtime-dispatched SIMD similarity kernels.
///
/// Everything hot in the serving path — brute-force scans, IVF centroid
/// ranking, HNSW edge scoring, UI dot-product scoring — funnels through
/// this layer. Three variants (scalar, AVX2+FMA, AVX-512F) are compiled
/// into separate translation units; a function-pointer table is resolved
/// once at startup from CPUID, overridable with SCCF_SIMD=scalar|avx2|
/// avx512 (unknown or CPU-unsupported values fall back to the best
/// supported variant with a warning). See docs/PERFORMANCE.md.
///
/// Layering: util <- simd <- tensor <- everything else. This header must
/// not depend on tensor/ or index/.
namespace sccf::simd {

enum class Variant : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar", "avx2", or "avx512".
const char* VariantName(Variant v);

/// True when the variant was both compiled in and is supported by the
/// running CPU. kScalar is always supported.
bool VariantSupported(Variant v);

/// The variant all kernels currently dispatch to.
Variant ActiveVariant();

/// Forces dispatch to `v` for the rest of the process (tests, benchmarks).
/// Fails with InvalidArgument when the variant is not supported here.
Status ForceVariant(Variant v);

/// Re-resolves the active variant: SCCF_SIMD env override if set and
/// supported, otherwise the best CPU-supported variant. Called implicitly
/// on first kernel use; exposed so tests can exercise the env path.
void ResetVariantFromEnv();

/// Inner product of two length-n float arrays.
float Dot(const float* a, const float* b, size_t n);

/// Squared Euclidean distance: sum_i (a[i] - b[i])^2.
float SquaredL2(const float* a, const float* b, size_t n);

/// L2 norm, clamped at 0 before the sqrt so FP noise cannot produce NaN.
float Norm(const float* a, size_t n);

/// Cosine similarity. The zero-norm guard lives HERE and only here:
/// if either vector has zero norm the similarity is defined as 0.
float Cosine(const float* a, const float* b, size_t n);

/// y += alpha * x for length-n arrays.
void Axpy(float alpha, const float* x, float* y, size_t n);

/// out = in / ||in||; a zero-norm input writes all zeros. Same policy as
/// Cosine: one definition of zero-norm handling for every index backend.
void NormalizeCopy(const float* in, float* out, size_t n);

/// v /= ||v|| in place; a zero-norm input is left untouched (all zeros).
void NormalizeInPlace(float* v, size_t n);

/// out[r] = Dot(q, base + r*dim) for r in [0, count). `base` is a dense
/// row-major matrix of `count` rows. This is the brute-force scan
/// primitive: rows are blocked so each query load is amortized over
/// several rows.
void DotBatch(const float* q, const float* base, size_t count, size_t dim,
              float* out);

/// Top-k rows of `base` by inner product with `q`, blocked through
/// DotBatch. Results are (row, score) sorted by descending score, ties by
/// ascending row. Selection semantics replicate index::TopKAccumulator
/// offered in row order (strictly-greater replacement), so callers whose
/// external ids equal row indices get bit-identical results to a scalar
/// offer loop. `exclude_row` (if >= 0) is skipped.
void TopKDot(const float* q, const float* base, size_t count, size_t dim,
             size_t k, ptrdiff_t exclude_row,
             std::vector<std::pair<int, float>>* out);

/// dst[idx[i]] += v for i in [0, n). Pre: idx values are unique within a
/// call and in-bounds. Used for neighborhood vote accumulation (Eq. 12),
/// where each neighbor's item list is de-duplicated.
void ScatterAddConstant(float* dst, const int* idx, size_t n, float v);

/// ---- Int8 (SQ8) kernels -----------------------------------------------
///
/// The quant layer stores rows as int8 codes with a per-row affine map
/// value = scale * code + offset (see src/quant/sq8.h). These kernels
/// score an fp32 query against code rows without materializing decoded
/// floats: dot(q, decoded_row) = scale * DotI8(q, codes) + offset * qsum
/// where qsum = sum_i q[i]. Callers precompute qsum once per query.

/// Raw widened inner product sum_i q[i] * c[i], fp32 accumulation. This is
/// the per-variant primitive; it carries no scale/offset semantics.
float DotI8(const float* q, const int8_t* c, size_t n);

/// out[r] = DotI8(q, base + r*dim) for r in [0, count). `base` is a dense
/// row-major int8 code matrix.
void DotBatchI8(const float* q, const int8_t* base, size_t count,
                size_t dim, float* out);

/// Cosine similarity between fp32 query q and the decoded row
/// scale * c + offset. qsum = sum_i q[i]. Zero-norm policy matches
/// Cosine(): if either side has zero norm the similarity is 0. Derived —
/// identical across variants up to FP reassociation of the raw dot.
float CosineI8(const float* q, const int8_t* c, size_t n, float scale,
               float offset, float qsum);

/// Top-k rows of an int8 code matrix by decoded inner product with q:
/// score(r) = scales[r] * DotI8(q, row_r) + offsets[r] * qsum. Selection
/// and tie semantics are identical to TopKDot (strictly-greater
/// replacement, descending score then ascending row). `exclude_row`
/// (if >= 0) is skipped.
void TopKDotI8(const float* q, const int8_t* base, size_t count, size_t dim,
               const float* scales, const float* offsets, float qsum,
               size_t k, ptrdiff_t exclude_row,
               std::vector<std::pair<int, float>>* out);

}  // namespace sccf::simd

#endif  // SCCF_SIMD_KERNELS_H_
