#ifndef SCCF_NN_OPTIMIZER_H_
#define SCCF_NN_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "nn/parameter.h"

namespace sccf::nn {

/// Mini-batch Adam (Kingma & Ba) with the paper's settings: lr = 0.001,
/// beta1 = 0.9, beta2 = 0.999, optional linear learning-rate decay and L2
/// regularisation (the lambda * ||Theta||^2 term of Eq. 9 / Eq. 17).
///
/// Row-sparse parameters (embedding tables) are updated lazily: only rows
/// touched since the last step have their moments and values updated, so a
/// step costs O(batch rows), not O(vocabulary).
class AdamOptimizer {
 public:
  struct Options {
    float learning_rate = 0.001f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    /// L2 penalty coefficient lambda; 0 disables.
    float weight_decay = 0.0f;
    /// When > 0, lr decays linearly from learning_rate to
    /// learning_rate * min_lr_fraction over `decay_steps` steps.
    size_t decay_steps = 0;
    float min_lr_fraction = 0.1f;
  };

  explicit AdamOptimizer(Options options) : options_(options) {}

  /// Applies one update using the gradients accumulated in `params`,
  /// then zeroes those gradients. Parameters without gradients are skipped.
  void Step(const std::vector<Parameter*>& params);

  /// Effective learning rate for the next step (after decay).
  float CurrentLearningRate() const;

  size_t step_count() const { return step_; }

 private:
  void EnsureState(Parameter* p);
  void UpdateRow(Parameter* p, size_t row_begin, size_t len, float lr,
                 float bias_c1, float bias_c2);

  Options options_;
  size_t step_ = 0;
};

}  // namespace sccf::nn

#endif  // SCCF_NN_OPTIMIZER_H_
