#ifndef SCCF_NN_GRAPH_H_
#define SCCF_NN_GRAPH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::nn {

class Graph;

/// Lightweight handle to a node inside a Graph.
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Define-by-run automatic differentiation tape.
///
/// Every op evaluates eagerly at construction and records a backward
/// closure; `Backward(loss)` walks the tape in reverse creation order
/// (which is a valid topological order) and accumulates gradients into the
/// referenced Parameters. A Graph is built per training step and discarded.
///
/// All ops operate on rank-2 matrices unless stated otherwise; a rank-1
/// tensor of length d is treated as 1 x d where broadcasting applies.
class Graph {
 public:
  /// `training` enables Dropout; `rng` is required when training with
  /// dropout and may be null otherwise.
  explicit Graph(bool training = false, Rng* rng = nullptr)
      : training_(training), rng_(rng) {}

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Leaves -----------------------------------------------------------

  /// Constant leaf; no gradient flows into it.
  Var Input(Tensor value);

  /// Trainable leaf. The parameter's dense gradient is accumulated when
  /// Backward runs.
  Var Param(Parameter* p);

  /// Gathers rows `ids` of an embedding table as an [ids.size(), d] value.
  /// Gradients are scattered back into `table->grad` sparsely; `table`
  /// should have row_sparse = true.
  Var Gather(Parameter* table, const std::vector<int>& ids);

  // ---- Linear algebra ----------------------------------------------------

  /// op(a) @ op(b) with optional transposes.
  Var MatMul(Var a, Var b, bool trans_a = false, bool trans_b = false);

  /// Per-row dot product of equal-shape [n, d] inputs -> [n, 1].
  Var RowsDot(Var a, Var b);

  // ---- Elementwise -------------------------------------------------------

  /// a + b. `b` (or `a`) may be [1, d] and is broadcast over rows.
  Var Add(Var a, Var b);
  /// a - b. `b` may be [1, d] broadcast over rows.
  Var Sub(Var a, Var b);
  /// Elementwise product; shapes must match exactly.
  Var Mul(Var a, Var b);
  Var Scale(Var a, float s);
  Var AddScalar(Var a, float s);

  Var Relu(Var a);
  Var Sigmoid(Var a);
  Var Tanh(Var a);

  // ---- Structured ops ----------------------------------------------------

  /// Row-wise softmax. If `additive_mask` is non-null it is added to the
  /// pre-softmax values (use -1e9 entries for masking); it must match the
  /// input shape and is treated as a constant.
  Var SoftmaxRows(Var a, const Tensor* additive_mask = nullptr);

  /// Row-wise layer normalisation with learned gain/bias ([1, d] vars).
  Var LayerNorm(Var x, Var gamma, Var beta, float eps = 1e-8f);

  /// Inverted dropout; identity when the graph is not in training mode.
  Var Dropout(Var x, float rate);

  /// Horizontal concatenation of matrices with equal row counts.
  Var ConcatCols(const std::vector<Var>& parts);

  /// Columns [begin, end) of x.
  Var SliceCols(Var x, size_t begin, size_t end);

  /// Rows [begin, end) of x.
  Var SliceRows(Var x, size_t begin, size_t end);

  // ---- Reductions --------------------------------------------------------

  /// Column-wise sum over rows: [n, d] -> [1, d].
  Var SumRows(Var x);
  /// Mean of all entries -> scalar.
  Var MeanAll(Var x);
  /// Sum of all entries -> scalar.
  Var SumAll(Var x);

  // ---- Losses ------------------------------------------------------------

  /// Mean binary cross-entropy with logits; numerically stable fused op.
  /// `labels` must match the logits shape (entries in {0,1} typically).
  Var BceWithLogits(Var logits, const Tensor& labels);

  /// BPR pairwise loss: mean softplus(neg - pos); inputs same shape.
  Var BprLoss(Var pos_logits, Var neg_logits);

  // ---- Execution ---------------------------------------------------------

  /// Runs reverse-mode accumulation from `loss` (must be scalar) and
  /// flushes parameter gradients. May be called once per graph.
  void Backward(Var loss);

  const Tensor& value(Var v) const { return nodes_[v.id].value; }
  /// Valid after Backward for nodes on the differentiated path.
  const Tensor& grad(Var v) const { return nodes_[v.id].grad; }

  bool training() const { return training_; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    bool requires_grad = false;
    Parameter* param = nullptr;                 // dense parameter leaves
    Parameter* gather_table = nullptr;          // sparse gather leaves
    std::vector<int> gather_ids;
    std::function<void(Graph*, int)> backward;  // null for leaves
  };

  int NewNode(Tensor value, bool requires_grad);
  Node& node(int id) { return nodes_[id]; }
  Tensor& grad_buffer(int id);
  /// Adds `delta` into the grad buffer of `id` (allocating if needed),
  /// broadcasting-aware reduction handled by callers.
  void AccumulateGrad(int id, const Tensor& delta);

  bool training_ = false;
  Rng* rng_;
  bool backward_done_ = false;
  std::vector<Node> nodes_;
};

}  // namespace sccf::nn

#endif  // SCCF_NN_GRAPH_H_
