#ifndef SCCF_NN_TRANSFORMER_H_
#define SCCF_NN_TRANSFORMER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/parameter.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace sccf::nn {

/// Builds the [len, len] additive causal mask of Eq. 4-5: position t may
/// attend to positions <= t; disallowed entries hold -1e9.
Tensor CausalMask(size_t len);

/// One Transformer encoder block as used by SASRec (paper Fig. 3a, Eq. 4-7):
/// post-norm residual multi-head self-attention followed by a position-wise
/// feed-forward network, with dropout on each sublayer output.
class TransformerBlock {
 public:
  /// Pre: dim % num_heads == 0.
  TransformerBlock(std::string name, size_t dim, size_t num_heads,
                   float dropout_rate, Rng& rng);

  /// x: [len, dim] -> [len, dim]. `causal_mask` must be CausalMask(len);
  /// it is passed in so callers can cache it across sequences.
  Var Apply(Graph& g, Var x, const Tensor& causal_mask) const;

  std::vector<Parameter*> Parameters();

 private:
  Var SelfAttention(Graph& g, Var x, const Tensor& causal_mask) const;

  size_t dim_ = 0;
  size_t num_heads_ = 1;
  float dropout_rate_ = 0.0f;
  std::unique_ptr<Parameter> wq_;
  std::unique_ptr<Parameter> wk_;
  std::unique_ptr<Parameter> wv_;
  std::unique_ptr<Parameter> wo_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNormParams ln1_;
  LayerNormParams ln2_;
};

}  // namespace sccf::nn

#endif  // SCCF_NN_TRANSFORMER_H_
