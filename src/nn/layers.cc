#include "nn/layers.h"

namespace sccf::nn {

Linear::Linear(std::string name, size_t in_dim, size_t out_dim, Rng& rng,
               float init_stddev)
    : weight_(std::make_unique<Parameter>(
          name + ".W",
          Tensor::TruncatedNormal({in_dim, out_dim}, init_stddev, rng))),
      bias_(std::make_unique<Parameter>(name + ".b",
                                        Tensor::Zeros({1, out_dim}))) {}

Var Linear::Apply(Graph& g, Var x) const {
  Var w = g.Param(weight_.get());
  Var b = g.Param(bias_.get());
  return g.Add(g.MatMul(x, w), b);
}

std::vector<Parameter*> Linear::Parameters() {
  return {weight_.get(), bias_.get()};
}

LayerNormParams::LayerNormParams(std::string name, size_t dim)
    : gamma_(std::make_unique<Parameter>(name + ".gamma",
                                         Tensor::Full({1, dim}, 1.0f))),
      beta_(std::make_unique<Parameter>(name + ".beta",
                                        Tensor::Zeros({1, dim}))) {}

Var LayerNormParams::Apply(Graph& g, Var x, float eps) const {
  return g.LayerNorm(x, g.Param(gamma_.get()), g.Param(beta_.get()), eps);
}

std::vector<Parameter*> LayerNormParams::Parameters() {
  return {gamma_.get(), beta_.get()};
}

Mlp::Mlp(std::string name, const std::vector<size_t>& dims, Rng& rng,
         float dropout_rate)
    : dropout_rate_(dropout_rate) {
  SCCF_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng,
                         /*init_stddev=*/0.1f);
  }
}

Var Mlp::Apply(Graph& g, Var x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Apply(g, h);
    if (i + 1 < layers_.size()) {
      h = g.Relu(h);
      if (dropout_rate_ > 0.0f) h = g.Dropout(h, dropout_rate_);
    }
  }
  return h;
}

std::vector<Parameter*> Mlp::Parameters() {
  std::vector<Parameter*> out;
  for (auto& l : layers_) {
    for (Parameter* p : l.Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace sccf::nn
