#ifndef SCCF_NN_PARAMETER_H_
#define SCCF_NN_PARAMETER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sccf::nn {

/// A trainable tensor with its accumulated gradient.
///
/// `grad` always has the same shape as `value` and is zeroed by the
/// optimizer after each step. Embedding tables set `row_sparse` so that the
/// optimizer touches only the rows recorded in `touched_rows` (gathered
/// rows), keeping per-step cost proportional to the mini-batch instead of
/// the vocabulary.
struct Parameter {
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(Tensor::Zeros(value.shape())) {}

  /// Records dense use: every row is considered touched.
  void MarkDenseTouched() { dense_touched = true; }

  /// Records that `row` of `grad` received sparse contributions.
  void MarkRowTouched(size_t row) { touched_rows.push_back(row); }

  bool HasGradient() const { return dense_touched || !touched_rows.empty(); }

  std::string name;
  Tensor value;
  Tensor grad;
  bool row_sparse = false;
  bool dense_touched = false;
  std::vector<size_t> touched_rows;

  // Adam state, lazily sized by the optimizer.
  Tensor adam_m;
  Tensor adam_v;
};

}  // namespace sccf::nn

#endif  // SCCF_NN_PARAMETER_H_
