#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sccf::nn {

float AdamOptimizer::CurrentLearningRate() const {
  if (options_.decay_steps == 0) return options_.learning_rate;
  const float frac =
      1.0f - static_cast<float>(step_) / options_.decay_steps;
  return options_.learning_rate *
         std::max(options_.min_lr_fraction, frac);
}

void AdamOptimizer::EnsureState(Parameter* p) {
  if (p->adam_m.size() != p->value.size() ||
      p->adam_m.shape() != p->value.shape()) {
    p->adam_m = Tensor::Zeros(p->value.shape());
    p->adam_v = Tensor::Zeros(p->value.shape());
  }
}

void AdamOptimizer::UpdateRow(Parameter* p, size_t row_begin, size_t len,
                              float lr, float bias_c1, float bias_c2) {
  float* value = p->value.data() + row_begin;
  float* grad = p->grad.data() + row_begin;
  float* m = p->adam_m.data() + row_begin;
  float* v = p->adam_v.data() + row_begin;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float wd = options_.weight_decay;
  for (size_t i = 0; i < len; ++i) {
    float g = grad[i];
    if (wd > 0.0f) g += 2.0f * wd * value[i];
    m[i] = b1 * m[i] + (1.0f - b1) * g;
    v[i] = b2 * v[i] + (1.0f - b2) * g * g;
    const float mhat = m[i] * bias_c1;
    const float vhat = v[i] * bias_c2;
    value[i] -= lr * mhat / (std::sqrt(vhat) + options_.epsilon);
    grad[i] = 0.0f;
  }
}

void AdamOptimizer::Step(const std::vector<Parameter*>& params) {
  const float lr = CurrentLearningRate();
  ++step_;
  const float bias_c1 =
      1.0f / (1.0f - std::pow(options_.beta1, static_cast<float>(step_)));
  const float bias_c2 =
      1.0f / (1.0f - std::pow(options_.beta2, static_cast<float>(step_)));

  for (Parameter* p : params) {
    if (!p->HasGradient()) continue;
    EnsureState(p);
    const size_t cols = p->value.rank() == 2 ? p->value.cols() : 1;
    if (p->row_sparse && !p->dense_touched) {
      auto& rows = p->touched_rows;
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      for (size_t row : rows) {
        UpdateRow(p, row * cols, cols, lr, bias_c1, bias_c2);
      }
    } else {
      UpdateRow(p, 0, p->value.size(), lr, bias_c1, bias_c2);
    }
    p->dense_touched = false;
    p->touched_rows.clear();
  }
}

}  // namespace sccf::nn
