#ifndef SCCF_NN_SERIALIZE_H_
#define SCCF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/status.h"

namespace sccf::nn {

/// Binary checkpointing of parameter values (not optimizer state).
///
/// Format: "SCCFCKPT" magic, u32 version, u32 parameter count; then per
/// parameter: u32 name length + bytes, u32 rank, u64 dims..., float32
/// payload. Little-endian, as written by the host.
///
/// SaveParameters writes the given parameters in order; LoadParameters
/// restores *by name* into an equally-shaped existing parameter set, so a
/// model is deserialised by constructing it (same options) and loading
/// into its parameters. Unknown names in the file or missing names in the
/// target are errors — checkpoints must match the architecture.
Status SaveParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

}  // namespace sccf::nn

#endif  // SCCF_NN_SERIALIZE_H_
