#include "nn/transformer.h"

#include <cmath>

namespace sccf::nn {

Tensor CausalMask(size_t len) {
  Tensor mask({len, len});
  for (size_t r = 0; r < len; ++r) {
    for (size_t c = r + 1; c < len; ++c) {
      mask.at(r, c) = -1e9f;
    }
  }
  return mask;
}

TransformerBlock::TransformerBlock(std::string name, size_t dim,
                                   size_t num_heads, float dropout_rate,
                                   Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      dropout_rate_(dropout_rate),
      wq_(std::make_unique<Parameter>(
          name + ".Wq", Tensor::TruncatedNormal({dim, dim}, 0.01f, rng))),
      wk_(std::make_unique<Parameter>(
          name + ".Wk", Tensor::TruncatedNormal({dim, dim}, 0.01f, rng))),
      wv_(std::make_unique<Parameter>(
          name + ".Wv", Tensor::TruncatedNormal({dim, dim}, 0.01f, rng))),
      wo_(std::make_unique<Parameter>(
          name + ".Wo", Tensor::TruncatedNormal({dim, dim}, 0.01f, rng))),
      ffn1_(name + ".ffn1", dim, dim, rng),
      ffn2_(name + ".ffn2", dim, dim, rng),
      ln1_(name + ".ln1", dim),
      ln2_(name + ".ln2", dim) {
  SCCF_CHECK_GT(num_heads, 0u);
  SCCF_CHECK_EQ(dim % num_heads, 0u);
}

Var TransformerBlock::SelfAttention(Graph& g, Var x,
                                    const Tensor& causal_mask) const {
  Var q = g.MatMul(x, g.Param(wq_.get()));
  Var k = g.MatMul(x, g.Param(wk_.get()));
  Var v = g.MatMul(x, g.Param(wv_.get()));

  const size_t head_dim = dim_ / num_heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  std::vector<Var> heads;
  heads.reserve(num_heads_);
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t lo = h * head_dim;
    const size_t hi = lo + head_dim;
    Var qh = num_heads_ == 1 ? q : g.SliceCols(q, lo, hi);
    Var kh = num_heads_ == 1 ? k : g.SliceCols(k, lo, hi);
    Var vh = num_heads_ == 1 ? v : g.SliceCols(v, lo, hi);
    Var scores = g.Scale(g.MatMul(qh, kh, false, true), scale);
    Var attn = g.SoftmaxRows(scores, &causal_mask);
    attn = g.Dropout(attn, dropout_rate_);
    heads.push_back(g.MatMul(attn, vh));
  }
  Var concat = num_heads_ == 1 ? heads[0] : g.ConcatCols(heads);
  return g.MatMul(concat, g.Param(wo_.get()));
}

Var TransformerBlock::Apply(Graph& g, Var x,
                            const Tensor& causal_mask) const {
  // Eq. 7: LayerNorm(x + Dropout(sublayer(x))) for both sublayers.
  Var sa = SelfAttention(g, x, causal_mask);
  Var h = ln1_.Apply(g, g.Add(x, g.Dropout(sa, dropout_rate_)));

  Var ffn = ffn2_.Apply(g, g.Relu(ffn1_.Apply(g, h)));
  return ln2_.Apply(g, g.Add(h, g.Dropout(ffn, dropout_rate_)));
}

std::vector<Parameter*> TransformerBlock::Parameters() {
  std::vector<Parameter*> out = {wq_.get(), wk_.get(), wv_.get(), wo_.get()};
  for (Parameter* p : ffn1_.Parameters()) out.push_back(p);
  for (Parameter* p : ffn2_.Parameters()) out.push_back(p);
  for (Parameter* p : ln1_.Parameters()) out.push_back(p);
  for (Parameter* p : ln2_.Parameters()) out.push_back(p);
  return out;
}

}  // namespace sccf::nn
