#include "nn/graph.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace sccf::nn {

namespace {

// Whether `small` can broadcast over the rows of `big`: small is [1, d] or
// [d] and big is [n, d].
bool RowBroadcastable(const Tensor& big, const Tensor& small) {
  return small.rows() == 1 && small.cols() == big.cols();
}

// Reduces an [n, d] delta to the [1, d] (or [d]) shape of `target` by
// summing over rows, then adds it in.
void AddRowReduced(const Tensor& delta, Tensor* target) {
  const size_t n = delta.rows();
  const size_t d = delta.cols();
  for (size_t r = 0; r < n; ++r) {
    tensor_ops::Axpy(1.0f, delta.data() + r * d, target->data(), d);
  }
}

}  // namespace

int Graph::NewNode(Tensor value, bool requires_grad) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

Tensor& Graph::grad_buffer(int id) {
  Node& n = nodes_[id];
  if (n.grad.size() != n.value.size() || n.grad.shape() != n.value.shape()) {
    n.grad = Tensor::Zeros(n.value.shape());
  }
  return n.grad;
}

void Graph::AccumulateGrad(int id, const Tensor& delta) {
  Tensor& g = grad_buffer(id);
  SCCF_CHECK_EQ(g.size(), delta.size());
  tensor_ops::Axpy(1.0f, delta.data(), g.data(), g.size());
}

Var Graph::Input(Tensor value) {
  return {NewNode(std::move(value), /*requires_grad=*/false)};
}

Var Graph::Param(Parameter* p) {
  SCCF_CHECK(p != nullptr);
  int id = NewNode(p->value, /*requires_grad=*/true);
  nodes_[id].param = p;
  return {id};
}

Var Graph::Gather(Parameter* table, const std::vector<int>& ids) {
  SCCF_CHECK(table != nullptr);
  SCCF_CHECK_EQ(table->value.rank(), 2u);
  const size_t d = table->value.cols();
  Tensor out({ids.size(), d});
  for (size_t r = 0; r < ids.size(); ++r) {
    SCCF_CHECK_GE(ids[r], 0);
    SCCF_CHECK_LT(static_cast<size_t>(ids[r]), table->value.rows());
    std::copy(table->value.data() + ids[r] * d,
              table->value.data() + (ids[r] + 1) * d, out.data() + r * d);
  }
  int id = NewNode(std::move(out), /*requires_grad=*/true);
  nodes_[id].gather_table = table;
  nodes_[id].gather_ids = ids;
  return {id};
}

Var Graph::MatMul(Var a, Var b, bool trans_a, bool trans_b) {
  const Tensor& av = nodes_[a.id].value;
  const Tensor& bv = nodes_[b.id].value;
  const size_t m = trans_a ? av.cols() : av.rows();
  const size_t n = trans_b ? bv.rows() : bv.cols();
  Tensor out({m, n});
  tensor_ops::Gemm(av, trans_a, bv, trans_b, 1.0f, 0.0f, &out);
  bool rg = nodes_[a.id].requires_grad || nodes_[b.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, b, trans_a, trans_b](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& av = g->nodes_[a.id].value;
      const Tensor& bv = g->nodes_[b.id].value;
      if (g->nodes_[a.id].requires_grad) {
        Tensor& da = g->grad_buffer(a.id);
        if (!trans_a) {
          // dA += dC @ op(B)^T
          tensor_ops::Gemm(dc, false, bv, !trans_b, 1.0f, 1.0f, &da);
        } else {
          // dA += op(B) @ dC^T
          tensor_ops::Gemm(bv, trans_b, dc, true, 1.0f, 1.0f, &da);
        }
      }
      if (g->nodes_[b.id].requires_grad) {
        Tensor& db = g->grad_buffer(b.id);
        if (!trans_b) {
          // dB += op(A)^T @ dC
          tensor_ops::Gemm(av, !trans_a, dc, false, 1.0f, 1.0f, &db);
        } else {
          // dB += dC^T @ op(A)
          tensor_ops::Gemm(dc, true, av, trans_a, 1.0f, 1.0f, &db);
        }
      }
    };
  }
  return {id};
}

Var Graph::RowsDot(Var a, Var b) {
  const Tensor& av = nodes_[a.id].value;
  const Tensor& bv = nodes_[b.id].value;
  SCCF_CHECK(av.shape() == bv.shape());
  const size_t n = av.rows();
  const size_t d = av.cols();
  Tensor out({n, 1});
  for (size_t r = 0; r < n; ++r) {
    out[r] = tensor_ops::Dot(av.data() + r * d, bv.data() + r * d, d);
  }
  bool rg = nodes_[a.id].requires_grad || nodes_[b.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, b, n, d](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& av = g->nodes_[a.id].value;
      const Tensor& bv = g->nodes_[b.id].value;
      if (g->nodes_[a.id].requires_grad) {
        Tensor& da = g->grad_buffer(a.id);
        for (size_t r = 0; r < n; ++r) {
          tensor_ops::Axpy(dc[r], bv.data() + r * d, da.data() + r * d, d);
        }
      }
      if (g->nodes_[b.id].requires_grad) {
        Tensor& db = g->grad_buffer(b.id);
        for (size_t r = 0; r < n; ++r) {
          tensor_ops::Axpy(dc[r], av.data() + r * d, db.data() + r * d, d);
        }
      }
    };
  }
  return {id};
}

Var Graph::Add(Var a, Var b) {
  const Tensor& av = nodes_[a.id].value;
  const Tensor& bv = nodes_[b.id].value;
  // Allow either operand to be row-broadcast; normalise so `big` is first.
  bool b_small = av.shape() != bv.shape() && RowBroadcastable(av, bv);
  bool a_small = av.shape() != bv.shape() && RowBroadcastable(bv, av);
  SCCF_CHECK(av.shape() == bv.shape() || b_small || a_small)
      << "Add shape mismatch: " << av.ShapeString() << " vs "
      << bv.ShapeString();
  const Tensor& big = a_small ? bv : av;
  const Tensor& small = a_small ? av : bv;
  Tensor out = big;
  const size_t d = big.cols();
  if (av.shape() == bv.shape()) {
    tensor_ops::Axpy(1.0f, small.data(), out.data(), out.size());
  } else {
    for (size_t r = 0; r < big.rows(); ++r) {
      tensor_ops::Axpy(1.0f, small.data(), out.data() + r * d, d);
    }
  }
  bool rg = nodes_[a.id].requires_grad || nodes_[b.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, b](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      for (Var v : {a, b}) {
        if (!g->nodes_[v.id].requires_grad) continue;
        Tensor& dv = g->grad_buffer(v.id);
        if (dv.shape() == dc.shape()) {
          tensor_ops::Axpy(1.0f, dc.data(), dv.data(), dv.size());
        } else {
          AddRowReduced(dc, &dv);
        }
      }
    };
  }
  return {id};
}

Var Graph::Sub(Var a, Var b) {
  const Tensor& av = nodes_[a.id].value;
  const Tensor& bv = nodes_[b.id].value;
  bool b_small = av.shape() != bv.shape() && RowBroadcastable(av, bv);
  SCCF_CHECK(av.shape() == bv.shape() || b_small)
      << "Sub shape mismatch: " << av.ShapeString() << " vs "
      << bv.ShapeString();
  Tensor out = av;
  const size_t d = av.cols();
  if (b_small) {
    for (size_t r = 0; r < av.rows(); ++r) {
      tensor_ops::Axpy(-1.0f, bv.data(), out.data() + r * d, d);
    }
  } else {
    tensor_ops::Axpy(-1.0f, bv.data(), out.data(), out.size());
  }
  bool rg = nodes_[a.id].requires_grad || nodes_[b.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, b](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      if (g->nodes_[a.id].requires_grad) {
        g->AccumulateGrad(a.id, dc);
      }
      if (g->nodes_[b.id].requires_grad) {
        Tensor& db = g->grad_buffer(b.id);
        if (db.shape() == dc.shape()) {
          tensor_ops::Axpy(-1.0f, dc.data(), db.data(), db.size());
        } else {
          Tensor neg = dc;
          for (size_t i = 0; i < neg.size(); ++i) neg[i] = -neg[i];
          AddRowReduced(neg, &db);
        }
      }
    };
  }
  return {id};
}

Var Graph::Mul(Var a, Var b) {
  const Tensor& av = nodes_[a.id].value;
  const Tensor& bv = nodes_[b.id].value;
  SCCF_CHECK(av.shape() == bv.shape())
      << "Mul shape mismatch: " << av.ShapeString() << " vs "
      << bv.ShapeString();
  Tensor out = av;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= bv[i];
  bool rg = nodes_[a.id].requires_grad || nodes_[b.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, b](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& av = g->nodes_[a.id].value;
      const Tensor& bv = g->nodes_[b.id].value;
      if (g->nodes_[a.id].requires_grad) {
        Tensor& da = g->grad_buffer(a.id);
        for (size_t i = 0; i < da.size(); ++i) da[i] += dc[i] * bv[i];
      }
      if (g->nodes_[b.id].requires_grad) {
        Tensor& db = g->grad_buffer(b.id);
        for (size_t i = 0; i < db.size(); ++i) db[i] += dc[i] * av[i];
      }
    };
  }
  return {id};
}

Var Graph::Scale(Var a, float s) {
  Tensor out = nodes_[a.id].value;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= s;
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, s](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      Tensor& da = g->grad_buffer(a.id);
      tensor_ops::Axpy(s, dc.data(), da.data(), da.size());
    };
  }
  return {id};
}

Var Graph::AddScalar(Var a, float s) {
  Tensor out = nodes_[a.id].value;
  for (size_t i = 0; i < out.size(); ++i) out[i] += s;
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a](Graph* g, int self) {
      g->AccumulateGrad(a.id, g->nodes_[self].grad);
    };
  }
  return {id};
}

Var Graph::Relu(Var a) {
  Tensor out = nodes_[a.id].value;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& y = g->nodes_[self].value;
      Tensor& da = g->grad_buffer(a.id);
      for (size_t i = 0; i < da.size(); ++i) {
        if (y[i] > 0.0f) da[i] += dc[i];
      }
    };
  }
  return {id};
}

Var Graph::Sigmoid(Var a) {
  Tensor out = nodes_[a.id].value;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& y = g->nodes_[self].value;
      Tensor& da = g->grad_buffer(a.id);
      for (size_t i = 0; i < da.size(); ++i) {
        da[i] += dc[i] * y[i] * (1.0f - y[i]);
      }
    };
  }
  return {id};
}

Var Graph::Tanh(Var a) {
  Tensor out = nodes_[a.id].value;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& y = g->nodes_[self].value;
      Tensor& da = g->grad_buffer(a.id);
      for (size_t i = 0; i < da.size(); ++i) {
        da[i] += dc[i] * (1.0f - y[i] * y[i]);
      }
    };
  }
  return {id};
}

Var Graph::SoftmaxRows(Var a, const Tensor* additive_mask) {
  Tensor out = nodes_[a.id].value;
  if (additive_mask != nullptr) {
    SCCF_CHECK(out.shape() == additive_mask->shape());
    tensor_ops::Axpy(1.0f, additive_mask->data(), out.data(), out.size());
  }
  const size_t n = out.rows();
  const size_t d = out.cols();
  for (size_t r = 0; r < n; ++r) {
    tensor_ops::SoftmaxInPlace(out.data() + r * d, d);
  }
  bool rg = nodes_[a.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [a, n, d](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      const Tensor& y = g->nodes_[self].value;
      Tensor& da = g->grad_buffer(a.id);
      for (size_t r = 0; r < n; ++r) {
        const float* yr = y.data() + r * d;
        const float* dr = dc.data() + r * d;
        float dot = tensor_ops::Dot(yr, dr, d);
        float* out = da.data() + r * d;
        for (size_t c = 0; c < d; ++c) {
          out[c] += yr[c] * (dr[c] - dot);
        }
      }
    };
  }
  return {id};
}

Var Graph::LayerNorm(Var x, Var gamma, Var beta, float eps) {
  const Tensor& xv = nodes_[x.id].value;
  const Tensor& gv = nodes_[gamma.id].value;
  const Tensor& bv = nodes_[beta.id].value;
  const size_t n = xv.rows();
  const size_t d = xv.cols();
  SCCF_CHECK_EQ(gv.size(), d);
  SCCF_CHECK_EQ(bv.size(), d);

  // Cache xhat and inv_std for the backward pass by storing them in the
  // closure (shared ownership keeps the lambda copyable).
  auto xhat = std::make_shared<Tensor>(Tensor::Zeros({n, d}));
  auto inv_std = std::make_shared<std::vector<float>>(n);
  Tensor out({n, d});
  for (size_t r = 0; r < n; ++r) {
    const float* xr = xv.data() + r * d;
    float mean = 0.0f;
    for (size_t c = 0; c < d; ++c) mean += xr[c];
    mean /= d;
    float var = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      float t = xr[c] - mean;
      var += t * t;
    }
    var /= d;
    const float is = 1.0f / std::sqrt(var + eps);
    (*inv_std)[r] = is;
    float* hr = xhat->data() + r * d;
    float* orow = out.data() + r * d;
    for (size_t c = 0; c < d; ++c) {
      hr[c] = (xr[c] - mean) * is;
      orow[c] = gv[c] * hr[c] + bv[c];
    }
  }
  bool rg = nodes_[x.id].requires_grad || nodes_[gamma.id].requires_grad ||
            nodes_[beta.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [x, gamma, beta, xhat, inv_std, n, d](Graph* g,
                                                                int self) {
      const Tensor& dy = g->nodes_[self].grad;
      const Tensor& gv = g->nodes_[gamma.id].value;
      if (g->nodes_[beta.id].requires_grad) {
        Tensor& db = g->grad_buffer(beta.id);
        AddRowReduced(dy, &db);
      }
      if (g->nodes_[gamma.id].requires_grad) {
        Tensor& dg = g->grad_buffer(gamma.id);
        for (size_t r = 0; r < n; ++r) {
          const float* dr = dy.data() + r * d;
          const float* hr = xhat->data() + r * d;
          for (size_t c = 0; c < d; ++c) dg[c] += dr[c] * hr[c];
        }
      }
      if (g->nodes_[x.id].requires_grad) {
        Tensor& dx = g->grad_buffer(x.id);
        for (size_t r = 0; r < n; ++r) {
          const float* dr = dy.data() + r * d;
          const float* hr = xhat->data() + r * d;
          float* xr = dx.data() + r * d;
          // dxhat = dy * gamma; dx = (dxhat - mean(dxhat)
          //        - xhat * mean(dxhat * xhat)) * inv_std
          float mean_dxhat = 0.0f;
          float mean_dxhat_xhat = 0.0f;
          for (size_t c = 0; c < d; ++c) {
            const float dxh = dr[c] * gv[c];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * hr[c];
          }
          mean_dxhat /= d;
          mean_dxhat_xhat /= d;
          const float is = (*inv_std)[r];
          for (size_t c = 0; c < d; ++c) {
            const float dxh = dr[c] * gv[c];
            xr[c] += (dxh - mean_dxhat - hr[c] * mean_dxhat_xhat) * is;
          }
        }
      }
    };
  }
  return {id};
}

Var Graph::Dropout(Var x, float rate) {
  if (!training_ || rate <= 0.0f) return x;
  SCCF_CHECK(rng_ != nullptr) << "Dropout in training mode requires an Rng";
  SCCF_CHECK_LT(rate, 1.0f);
  const Tensor& xv = nodes_[x.id].value;
  const float keep_scale = 1.0f / (1.0f - rate);
  auto mask = std::make_shared<Tensor>(Tensor::Zeros(xv.shape()));
  Tensor out = xv;
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng_->Bernoulli(rate) ? 0.0f : keep_scale;
    (*mask)[i] = m;
    out[i] *= m;
  }
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [x, mask](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      Tensor& dx = g->grad_buffer(x.id);
      for (size_t i = 0; i < dx.size(); ++i) dx[i] += dc[i] * (*mask)[i];
    };
  }
  return {id};
}

Var Graph::ConcatCols(const std::vector<Var>& parts) {
  SCCF_CHECK(!parts.empty());
  const size_t n = nodes_[parts[0].id].value.rows();
  size_t total_cols = 0;
  bool rg = false;
  for (Var p : parts) {
    SCCF_CHECK_EQ(nodes_[p.id].value.rows(), n);
    total_cols += nodes_[p.id].value.cols();
    rg = rg || nodes_[p.id].requires_grad;
  }
  Tensor out({n, total_cols});
  size_t col = 0;
  for (Var p : parts) {
    const Tensor& pv = nodes_[p.id].value;
    const size_t d = pv.cols();
    for (size_t r = 0; r < n; ++r) {
      std::copy(pv.data() + r * d, pv.data() + (r + 1) * d,
                out.data() + r * total_cols + col);
    }
    col += d;
  }
  int id = NewNode(std::move(out), rg);
  if (rg) {
    auto parts_copy = parts;
    nodes_[id].backward = [parts_copy, n, total_cols](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      size_t col = 0;
      for (Var p : parts_copy) {
        const size_t d = g->nodes_[p.id].value.cols();
        if (g->nodes_[p.id].requires_grad) {
          Tensor& dp = g->grad_buffer(p.id);
          for (size_t r = 0; r < n; ++r) {
            tensor_ops::Axpy(1.0f, dc.data() + r * total_cols + col,
                             dp.data() + r * d, d);
          }
        }
        col += d;
      }
    };
  }
  return {id};
}

Var Graph::SliceCols(Var x, size_t begin, size_t end) {
  const Tensor& xv = nodes_[x.id].value;
  SCCF_CHECK_LE(begin, end);
  SCCF_CHECK_LE(end, xv.cols());
  const size_t n = xv.rows();
  const size_t d = xv.cols();
  const size_t w = end - begin;
  Tensor out({n, w});
  for (size_t r = 0; r < n; ++r) {
    std::copy(xv.data() + r * d + begin, xv.data() + r * d + end,
              out.data() + r * w);
  }
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [x, begin, n, d, w](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      Tensor& dx = g->grad_buffer(x.id);
      for (size_t r = 0; r < n; ++r) {
        tensor_ops::Axpy(1.0f, dc.data() + r * w,
                         dx.data() + r * d + begin, w);
      }
    };
  }
  return {id};
}

Var Graph::SliceRows(Var x, size_t begin, size_t end) {
  const Tensor& xv = nodes_[x.id].value;
  SCCF_CHECK_LE(begin, end);
  SCCF_CHECK_LE(end, xv.rows());
  const size_t d = xv.cols();
  const size_t n = end - begin;
  Tensor out({n, d});
  std::copy(xv.data() + begin * d, xv.data() + end * d, out.data());
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [x, begin, n, d](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      Tensor& dx = g->grad_buffer(x.id);
      tensor_ops::Axpy(1.0f, dc.data(), dx.data() + begin * d, n * d);
    };
  }
  return {id};
}

Var Graph::SumRows(Var x) {
  const Tensor& xv = nodes_[x.id].value;
  const size_t n = xv.rows();
  const size_t d = xv.cols();
  Tensor out({1, d});
  for (size_t r = 0; r < n; ++r) {
    tensor_ops::Axpy(1.0f, xv.data() + r * d, out.data(), d);
  }
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(std::move(out), rg);
  if (rg) {
    nodes_[id].backward = [x, n, d](Graph* g, int self) {
      const Tensor& dc = g->nodes_[self].grad;
      Tensor& dx = g->grad_buffer(x.id);
      for (size_t r = 0; r < n; ++r) {
        tensor_ops::Axpy(1.0f, dc.data(), dx.data() + r * d, d);
      }
    };
  }
  return {id};
}

Var Graph::MeanAll(Var x) {
  const Tensor& xv = nodes_[x.id].value;
  const size_t n = xv.size();
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += xv[i];
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(Tensor::Scalar(sum / n), rg);
  if (rg) {
    nodes_[id].backward = [x, n](Graph* g, int self) {
      const float d = g->nodes_[self].grad[0] / n;
      Tensor& dx = g->grad_buffer(x.id);
      for (size_t i = 0; i < n; ++i) dx[i] += d;
    };
  }
  return {id};
}

Var Graph::SumAll(Var x) {
  const Tensor& xv = nodes_[x.id].value;
  const size_t n = xv.size();
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += xv[i];
  bool rg = nodes_[x.id].requires_grad;
  int id = NewNode(Tensor::Scalar(sum), rg);
  if (rg) {
    nodes_[id].backward = [x, n](Graph* g, int self) {
      const float d = g->nodes_[self].grad[0];
      Tensor& dx = g->grad_buffer(x.id);
      for (size_t i = 0; i < n; ++i) dx[i] += d;
    };
  }
  return {id};
}

Var Graph::BceWithLogits(Var logits, const Tensor& labels) {
  const Tensor& z = nodes_[logits.id].value;
  SCCF_CHECK(z.shape() == labels.shape());
  const size_t n = z.size();
  SCCF_CHECK_GT(n, 0u);
  // loss_i = max(z,0) - z*y + log(1 + exp(-|z|)); mean over i.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float zi = z[i];
    total += std::max(zi, 0.0f) - zi * labels[i] +
             std::log1p(std::exp(-std::fabs(zi)));
  }
  bool rg = nodes_[logits.id].requires_grad;
  int id = NewNode(Tensor::Scalar(static_cast<float>(total / n)), rg);
  if (rg) {
    auto labels_copy = std::make_shared<Tensor>(labels);
    nodes_[id].backward = [logits, labels_copy, n](Graph* g, int self) {
      const float dscale = g->nodes_[self].grad[0] / n;
      const Tensor& z = g->nodes_[logits.id].value;
      Tensor& dz = g->grad_buffer(logits.id);
      for (size_t i = 0; i < n; ++i) {
        const float p = 1.0f / (1.0f + std::exp(-z[i]));
        dz[i] += dscale * (p - (*labels_copy)[i]);
      }
    };
  }
  return {id};
}

Var Graph::BprLoss(Var pos_logits, Var neg_logits) {
  const Tensor& p = nodes_[pos_logits.id].value;
  const Tensor& q = nodes_[neg_logits.id].value;
  SCCF_CHECK(p.shape() == q.shape());
  const size_t n = p.size();
  SCCF_CHECK_GT(n, 0u);
  // loss = mean softplus(neg - pos), the negative log of Eq. (BPR).
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float x = q[i] - p[i];
    total += x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  }
  bool rg = nodes_[pos_logits.id].requires_grad ||
            nodes_[neg_logits.id].requires_grad;
  int id = NewNode(Tensor::Scalar(static_cast<float>(total / n)), rg);
  if (rg) {
    nodes_[id].backward = [pos_logits, neg_logits, n](Graph* g, int self) {
      const float dscale = g->nodes_[self].grad[0] / n;
      const Tensor& p = g->nodes_[pos_logits.id].value;
      const Tensor& q = g->nodes_[neg_logits.id].value;
      for (size_t i = 0; i < n; ++i) {
        const float x = q[i] - p[i];
        const float s = 1.0f / (1.0f + std::exp(-x));  // sigmoid(neg - pos)
        if (g->nodes_[pos_logits.id].requires_grad) {
          g->grad_buffer(pos_logits.id)[i] += -dscale * s;
        }
        if (g->nodes_[neg_logits.id].requires_grad) {
          g->grad_buffer(neg_logits.id)[i] += dscale * s;
        }
      }
    };
  }
  return {id};
}

void Graph::Backward(Var loss) {
  SCCF_CHECK(!backward_done_) << "Backward may be called once per graph";
  backward_done_ = true;
  Node& ln = nodes_[loss.id];
  SCCF_CHECK_EQ(ln.value.size(), 1u) << "loss must be scalar";
  SCCF_CHECK(ln.requires_grad) << "loss does not depend on any parameter";
  grad_buffer(loss.id)[0] = 1.0f;

  for (int i = loss.id; i >= 0; --i) {
    Node& n = nodes_[i];
    if (!n.requires_grad) continue;
    // Nodes created after the loss cannot contribute to it; nodes with an
    // empty grad buffer received no gradient (off-path) and are skipped.
    if (n.grad.shape() != n.value.shape()) continue;
    if (n.backward) n.backward(this, i);
    if (n.param != nullptr) {
      tensor_ops::Axpy(1.0f, n.grad.data(), n.param->grad.data(),
                       n.grad.size());
      n.param->MarkDenseTouched();
    }
    if (n.gather_table != nullptr) {
      Parameter* t = n.gather_table;
      const size_t d = t->value.cols();
      for (size_t r = 0; r < n.gather_ids.size(); ++r) {
        const int row = n.gather_ids[r];
        tensor_ops::Axpy(1.0f, n.grad.data() + r * d,
                         t->grad.data() + row * d, d);
        t->MarkRowTouched(row);
      }
    }
  }
}

}  // namespace sccf::nn
