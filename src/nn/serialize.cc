#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace sccf::nn {

namespace {
constexpr char kMagic[8] = {'S', 'C', 'C', 'F', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& f, T v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* v) {
  f.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(f);
}
}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(f, kVersion);
  WritePod<uint32_t>(f, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WritePod<uint32_t>(f, static_cast<uint32_t>(p->name.size()));
    f.write(p->name.data(), p->name.size());
    WritePod<uint32_t>(f, static_cast<uint32_t>(p->value.rank()));
    for (size_t dim : p->value.shape()) {
      WritePod<uint64_t>(f, static_cast<uint64_t>(dim));
    }
    f.write(reinterpret_cast<const char*>(p->value.data()),
            p->value.size() * sizeof(float));
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an SCCF checkpoint");
  }
  uint32_t version = 0, count = 0;
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(f, &count)) return Status::IoError("truncated checkpoint");

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    if (!by_name.emplace(p->name, p).second) {
      return Status::InvalidArgument("duplicate parameter name: " + p->name);
    }
  }
  size_t restored = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(f, &name_len) || name_len > 4096) {
      return Status::IoError("corrupt checkpoint (name length)");
    }
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!f || !ReadPod(f, &rank) || rank > 2) {
      return Status::IoError("corrupt checkpoint (rank)");
    }
    std::vector<size_t> shape(rank);
    size_t total = 1;
    for (uint32_t r = 0; r < rank; ++r) {
      uint64_t dim = 0;
      if (!ReadPod(f, &dim)) return Status::IoError("corrupt checkpoint");
      shape[r] = static_cast<size_t>(dim);
      total *= shape[r];
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("checkpoint parameter '" + name +
                                     "' not present in target model");
    }
    Parameter* p = it->second;
    if (p->value.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for '" + name + "'");
    }
    f.read(reinterpret_cast<char*>(p->value.data()), total * sizeof(float));
    if (!f) return Status::IoError("truncated checkpoint payload");
    ++restored;
  }
  if (restored != params.size()) {
    return Status::InvalidArgument(
        "checkpoint restored " + std::to_string(restored) + " of " +
        std::to_string(params.size()) + " parameters");
  }
  return Status::OK();
}

}  // namespace sccf::nn
