#include "nn/serialize.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/coding.h"

namespace sccf::nn {

namespace {
constexpr char kMagic[8] = {'S', 'C', 'C', 'F', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 2;

/// One parsed-and-validated record, staged until the whole checkpoint has
/// been accepted. Loading must be all-or-nothing: a checkpoint that fails
/// validation halfway may not leave the target model half-mutated.
struct StagedRecord {
  Parameter* target = nullptr;
  std::vector<float> payload;
};

}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  // Serialize fully in memory first; nothing touches the filesystem until
  // the byte string is complete.
  std::string blob;
  blob.append(kMagic, sizeof(kMagic));
  PutFixed32(&blob, kVersion);
  PutFixed32(&blob, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    PutFixed32(&blob, static_cast<uint32_t>(p->name.size()));
    blob.append(p->name.data(), p->name.size());
    PutFixed32(&blob, static_cast<uint32_t>(p->value.rank()));
    for (size_t dim : p->value.shape()) {
      PutFixed64(&blob, static_cast<uint64_t>(dim));
    }
    PutFloats(&blob, p->value.data(), p->value.size());
  }

  // Crash-safe commit: write <path>.tmp, fsync it, then rename over the
  // target. A crash at any point leaves either the old complete file or
  // the new complete file — never a torn checkpoint at `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp + " for writing");
  }
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size() &&
      std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (!f && !f.eof()) return Status::IoError("read failed: " + path);
  const std::string bytes = std::move(buf).str();

  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.ReadView(sizeof(kMagic), &magic).ok() ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an SCCF checkpoint");
  }
  uint32_t version = 0, count = 0;
  if (!reader.ReadFixed32(&version).ok() || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!reader.ReadFixed32(&count).ok()) {
    return Status::IoError("truncated checkpoint");
  }

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    if (!by_name.emplace(p->name, p).second) {
      return Status::InvalidArgument("duplicate parameter name: " + p->name);
    }
  }

  // Parse + validate every record into staging buffers. No live tensor is
  // touched in this loop, so any error below returns with the targets
  // bit-identical to their pre-call values.
  std::vector<StagedRecord> staged;
  staged.reserve(params.size());
  std::unordered_map<std::string, bool> seen_names;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!reader.ReadFixed32(&name_len).ok() || name_len > kMaxNameLen) {
      return Status::IoError("corrupt checkpoint (name length)");
    }
    std::string name;
    if (!reader.ReadBytes(name_len, &name).ok()) {
      return Status::IoError("truncated checkpoint (name)");
    }
    uint32_t rank = 0;
    if (!reader.ReadFixed32(&rank).ok() || rank > kMaxRank) {
      return Status::IoError("corrupt checkpoint (rank)");
    }
    std::vector<size_t> shape(rank);
    size_t total = 1;
    for (uint32_t r = 0; r < rank; ++r) {
      uint64_t dim = 0;
      if (!reader.ReadFixed64(&dim).ok()) {
        return Status::IoError("corrupt checkpoint");
      }
      // Adversarial u64 dims could wrap `total` into a small, plausible
      // element count; guard the multiplication explicitly.
      if (dim > std::numeric_limits<size_t>::max() / sizeof(float) ||
          (dim != 0 &&
           total > std::numeric_limits<size_t>::max() / sizeof(float) /
                       static_cast<size_t>(dim))) {
        return Status::IoError("corrupt checkpoint (dimension overflow)");
      }
      shape[r] = static_cast<size_t>(dim);
      total *= shape[r];
    }
    if (!seen_names.emplace(name, true).second) {
      return Status::InvalidArgument("checkpoint contains parameter '" +
                                     name + "' twice");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("checkpoint parameter '" + name +
                                     "' not present in target model");
    }
    Parameter* p = it->second;
    if (p->value.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for '" + name + "'");
    }
    StagedRecord record;
    record.target = p;
    if (!reader.ReadFloats(total, &record.payload).ok()) {
      return Status::IoError("truncated checkpoint payload");
    }
    staged.push_back(std::move(record));
  }
  if (staged.size() != params.size()) {
    return Status::InvalidArgument(
        "checkpoint restored " + std::to_string(staged.size()) + " of " +
        std::to_string(params.size()) + " parameters");
  }

  // Commit: only now, with the full checkpoint validated, mutate targets.
  for (StagedRecord& record : staged) {
    std::memcpy(record.target->value.data(), record.payload.data(),
                record.payload.size() * sizeof(float));
  }
  return Status::OK();
}

}  // namespace sccf::nn
