#ifndef SCCF_NN_LAYERS_H_
#define SCCF_NN_LAYERS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/parameter.h"
#include "util/random.h"

namespace sccf::nn {

/// Fully connected layer: y = x @ W + b, W: [in, out], b: [1, out].
class Linear {
 public:
  Linear(std::string name, size_t in_dim, size_t out_dim, Rng& rng,
         float init_stddev = 0.01f);

  /// x: [n, in] -> [n, out].
  Var Apply(Graph& g, Var x) const;

  std::vector<Parameter*> Parameters();

  Parameter& weight() { return *weight_; }
  Parameter& bias() { return *bias_; }

 private:
  std::unique_ptr<Parameter> weight_;
  std::unique_ptr<Parameter> bias_;
};

/// LayerNorm gain/bias pair (gamma initialised to 1, beta to 0).
class LayerNormParams {
 public:
  LayerNormParams(std::string name, size_t dim);

  Var Apply(Graph& g, Var x, float eps = 1e-8f) const;

  std::vector<Parameter*> Parameters();

 private:
  std::unique_ptr<Parameter> gamma_;
  std::unique_ptr<Parameter> beta_;
};

/// Multi-layer perceptron with ReLU activations between layers and a
/// linear head. Used by the SCCF integrating component (Eq. 15-17).
class Mlp {
 public:
  /// dims = {in, hidden..., out}. Requires >= 2 entries.
  Mlp(std::string name, const std::vector<size_t>& dims, Rng& rng,
      float dropout_rate = 0.0f);

  Var Apply(Graph& g, Var x) const;

  std::vector<Parameter*> Parameters();

 private:
  std::vector<Linear> layers_;
  float dropout_rate_ = 0.0f;
};

}  // namespace sccf::nn

#endif  // SCCF_NN_LAYERS_H_
