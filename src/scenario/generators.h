#ifndef SCCF_SCENARIO_GENERATORS_H_
#define SCCF_SCENARIO_GENERATORS_H_

// Internal registry wiring generators.cc into the factory in scenario.cc.
// Not part of the public scenario API.

#include <string>
#include <vector>

#include "data/dataset.h"
#include "scenario/scenario.h"
#include "util/status.h"

namespace sccf::scenario::internal {

struct GeneratorInfo {
  std::string name;
  /// Param keys this generator accepts; anything else is InvalidArgument.
  std::vector<std::string> allowed_params;
  StatusOr<data::Dataset> (*generate)(const ScenarioSpec& spec,
                                      ScenarioReport* report);
};

/// The five synthetic workload generators (bursty, drift, flash_sale,
/// hot_shard, power_law), name-sorted.
const std::vector<GeneratorInfo>& SyntheticGenerators();

}  // namespace sccf::scenario::internal

#endif  // SCCF_SCENARIO_GENERATORS_H_
