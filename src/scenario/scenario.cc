#include "scenario/scenario.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/loaders.h"
#include "scenario/generators.h"
#include "util/status.h"
#include "util/string_util.h"

namespace sccf::scenario {

namespace {

using internal::GeneratorInfo;

/// File-backed corpora registered beside the synthetic generators: name +
/// which loader parses the file.
struct FileSourceInfo {
  std::string name;
  StatusOr<std::vector<data::Interaction>> (*load)(const std::string& path);
};

const std::vector<FileSourceInfo>& FileSources() {
  static const std::vector<FileSourceInfo> kSources = {
      {"amazon", &data::LoadAmazonRatings},
      {"ml1m", &data::LoadMovieLens},
      {"ml20m", &data::LoadMovieLens},
  };
  return kSources;
}

const std::vector<std::string>& FileSourceParams() {
  static const std::vector<std::string> kParams = {"path", "core"};
  return kParams;
}

/// Unknown-param check. Collects offending keys sorted so the message is
/// deterministic regardless of unordered_map iteration order.
Status CheckParamKeys(const ScenarioSpec& spec,
                      const std::vector<std::string>& allowed) {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : spec.params) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      unknown.push_back(key);
    }
  }
  if (unknown.empty()) return Status::OK();
  std::sort(unknown.begin(), unknown.end());
  std::vector<std::string> sorted_allowed = allowed;
  std::sort(sorted_allowed.begin(), sorted_allowed.end());
  return Status::InvalidArgument(
      "scenario '" + spec.generator + "': unknown params: " +
      Join(unknown, ", ") + " (allowed: " + Join(sorted_allowed, ", ") +
      ")");
}

class SyntheticScenario : public ScenarioSource {
 public:
  SyntheticScenario(ScenarioSpec spec, const GeneratorInfo* info)
      : spec_(std::move(spec)), info_(info) {
    name_ = spec_.name.empty() ? spec_.generator : spec_.name;
  }

  const std::string& name() const override { return name_; }

  StatusOr<data::Dataset> Load() override {
    ScenarioReport report;
    SCCF_ASSIGN_OR_RETURN(data::Dataset ds,
                          info_->generate(spec_, &report));
    report_ = std::move(report);
    return ds;
  }

  const ScenarioReport& report() const override { return report_; }

 private:
  ScenarioSpec spec_;
  const GeneratorInfo* info_;
  std::string name_;
  ScenarioReport report_;
};

class FileScenario : public ScenarioSource {
 public:
  FileScenario(ScenarioSpec spec, const FileSourceInfo* info)
      : spec_(std::move(spec)), info_(info) {
    name_ = spec_.name.empty() ? spec_.generator : spec_.name;
  }

  const std::string& name() const override { return name_; }

  StatusOr<data::Dataset> Load() override {
    ScenarioParams p(spec_);
    const std::string path = p.Str("path", "");
    const int64_t core = p.Int("core", 5);
    SCCF_RETURN_NOT_OK(p.status());
    if (core < 0) {
      return Status::InvalidArgument(
          "scenario '" + spec_.generator + "': param 'core' must be >= 0");
    }
    // Existence check before the loader so an absent corpus is a clean
    // NotFound (tests and CI skip on this code) rather than an IoError.
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
      return Status::NotFound("scenario corpus file absent: " + path);
    }
    SCCF_ASSIGN_OR_RETURN(std::vector<data::Interaction> interactions,
                          info_->load(path));
    if (core > 1) {
      interactions =
          data::KCoreFilter(std::move(interactions),
                            static_cast<size_t>(core),
                            data::CoreFilterMode::kPaper);
    }
    SCCF_ASSIGN_OR_RETURN(
        data::Dataset ds,
        data::Dataset::FromInteractions(name_, std::move(interactions)));
    report_ = ScenarioReport{};
    report_.generator = spec_.generator;
    report_.dataset_name = ds.name();
    report_.num_users = ds.num_users();
    report_.num_items = ds.num_items();
    report_.num_events = ds.num_actions();
    const data::DatasetStats stats = ds.Stats();
    report_.metrics.emplace_back("avg_length", stats.avg_length);
    report_.metrics.emplace_back("density", stats.density);
    report_.metrics.emplace_back("core", static_cast<double>(core));
    report_.notes = "loaded from " + path;
    return ds;
  }

  const ScenarioReport& report() const override { return report_; }

 private:
  ScenarioSpec spec_;
  const FileSourceInfo* info_;
  std::string name_;
  ScenarioReport report_;
};

}  // namespace

double ScenarioReport::Metric(const std::string& key,
                              double fallback) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return fallback;
}

std::string ScenarioReport::ToString() const {
  std::string out = "generator=" + generator + " dataset=" + dataset_name +
                    " users=" + std::to_string(num_users) +
                    " items=" + std::to_string(num_items) +
                    " events=" + std::to_string(num_events);
  for (const auto& [k, v] : metrics) {
    out += " " + k + "=" + FormatFloat(v, 4);
  }
  if (!notes.empty()) out += " (" + notes + ")";
  return out;
}

double ScenarioParams::Double(const std::string& key, double def) {
  auto it = spec_->params.find(key);
  if (it == spec_->params.end()) return def;
  double v = 0.0;
  if (!ParseDouble(it->second, &v)) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "scenario param '" + key + "': expected a number, got '" +
          it->second + "'");
    }
    return def;
  }
  return v;
}

int64_t ScenarioParams::Int(const std::string& key, int64_t def) {
  auto it = spec_->params.find(key);
  if (it == spec_->params.end()) return def;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "scenario param '" + key + "': expected an integer, got '" +
          it->second + "'");
    }
    return def;
  }
  return v;
}

std::string ScenarioParams::Str(const std::string& key,
                                std::string def) const {
  auto it = spec_->params.find(key);
  return it == spec_->params.end() ? def : it->second;
}

bool ScenarioParams::Has(const std::string& key) const {
  return spec_->params.count(key) > 0;
}

StatusOr<std::unique_ptr<ScenarioSource>> MakeScenario(
    const ScenarioSpec& spec) {
  if (spec.generator.empty()) {
    return Status::InvalidArgument("scenario spec: generator is empty");
  }

  for (const GeneratorInfo& info : internal::SyntheticGenerators()) {
    if (info.name != spec.generator) continue;
    SCCF_RETURN_NOT_OK(CheckParamKeys(spec, info.allowed_params));
    if (spec.num_users == 0 || spec.num_items == 0 ||
        spec.events_per_user == 0) {
      return Status::InvalidArgument(
          "scenario '" + spec.generator +
          "': num_users, num_items, events_per_user must all be > 0");
    }
    return std::unique_ptr<ScenarioSource>(
        std::make_unique<SyntheticScenario>(spec, &info));
  }

  for (const FileSourceInfo& info : FileSources()) {
    if (info.name != spec.generator) continue;
    SCCF_RETURN_NOT_OK(CheckParamKeys(spec, FileSourceParams()));
    if (spec.params.find("path") == spec.params.end()) {
      return Status::InvalidArgument("scenario '" + spec.generator +
                                     "': param 'path' is required");
    }
    return std::unique_ptr<ScenarioSource>(
        std::make_unique<FileScenario>(spec, &info));
  }

  return Status::InvalidArgument(
      "unknown scenario generator '" + spec.generator +
      "'; known: " + Join(ListScenarioGenerators(), ", "));
}

std::vector<std::string> ListScenarioGenerators() {
  std::vector<std::string> names;
  for (const GeneratorInfo& info : internal::SyntheticGenerators()) {
    names.push_back(info.name);
  }
  for (const FileSourceInfo& info : FileSources()) {
    names.push_back(info.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sccf::scenario
