#ifndef SCCF_SCENARIO_SCENARIO_H_
#define SCCF_SCENARIO_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace sccf::scenario {

/// Declarative description of one workload: which generator, how big, and
/// generator-specific knobs as string-keyed params. Every synthetic
/// generator is fully deterministic from this struct — same spec (seed
/// included), same corpus bit-for-bit, regardless of the insertion order
/// of `params` (generation code never iterates the map).
struct ScenarioSpec {
  /// Generator key; see ListScenarioGenerators(). Synthetic:
  /// "bursty", "drift", "flash_sale", "hot_shard", "power_law".
  /// File-backed (need params["path"]): "ml1m", "ml20m", "amazon".
  std::string generator;

  /// Dataset name; defaults to the generator key when empty.
  std::string name;

  /// Corpus dimensions (synthetic generators only; file-backed sources
  /// take their size from the file).
  size_t num_users = 200;
  size_t num_items = 400;
  size_t events_per_user = 30;

  /// Master seed. The only source of randomness.
  uint64_t seed = 7;

  /// Generator-specific knobs, e.g. {"noise", "0.1"}. Unknown keys are an
  /// InvalidArgument at MakeScenario() time; malformed or out-of-range
  /// values are an InvalidArgument at Load() time. Never a crash.
  std::unordered_map<std::string, std::string> params;
};

/// Achieved statistics of one generated/loaded corpus, reported by the
/// generator that produced it (what did the workload actually look like,
/// as opposed to what the spec asked for).
struct ScenarioReport {
  std::string generator;
  std::string dataset_name;
  size_t num_users = 0;
  size_t num_items = 0;
  size_t num_events = 0;

  /// Generator-specific achieved metrics in a fixed, deterministic order
  /// (e.g. drift reports start/target cluster shares per half).
  std::vector<std::pair<std::string, double>> metrics;

  std::string notes;

  /// Value of the named metric, or `fallback` when absent.
  double Metric(const std::string& key, double fallback = 0.0) const;

  /// One-line "generator=... users=... k1=v1 k2=v2" rendering.
  std::string ToString() const;
};

/// A pluggable corpus source: synthetic generators and file-backed real
/// corpora (ML-1M/ML-20M/Amazon) present the same interface, so the
/// streaming eval and benches run identically against either.
class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;

  /// Dataset name (spec.name, or the generator key when unset).
  virtual const std::string& name() const = 0;

  /// Generates (synthetic) or loads (file-backed) the corpus. Synthetic
  /// sources are deterministic from the spec; file-backed sources return
  /// NotFound when the file is absent so callers can skip cleanly.
  virtual StatusOr<data::Dataset> Load() = 0;

  /// Achieved-statistics report of the last successful Load().
  virtual const ScenarioReport& report() const = 0;
};

/// Builds the source described by `spec`. InvalidArgument on an unknown
/// generator key, unknown param keys (listed sorted in the message), or
/// zero-sized synthetic dimensions.
StatusOr<std::unique_ptr<ScenarioSource>> MakeScenario(
    const ScenarioSpec& spec);

/// All registered generator keys, sorted.
std::vector<std::string> ListScenarioGenerators();

/// Typed accessor over ScenarioSpec::params used by the generators (public
/// because benches parse ad-hoc user flags through it too). Getters record
/// the first malformed value; check status() after reading everything.
class ScenarioParams {
 public:
  explicit ScenarioParams(const ScenarioSpec& spec) : spec_(&spec) {}

  double Double(const std::string& key, double def);
  int64_t Int(const std::string& key, int64_t def);
  std::string Str(const std::string& key, std::string def) const;
  bool Has(const std::string& key) const;

  Status status() const { return status_; }

 private:
  const ScenarioSpec* spec_;
  Status status_ = Status::OK();
};

}  // namespace sccf::scenario

#endif  // SCCF_SCENARIO_SCENARIO_H_
