#include "scenario/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "scenario/scenario.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace sccf::scenario::internal {

namespace {

using data::Dataset;
using data::Interaction;

// ---------------------------------------------------------------------------
// Shared sampling helpers. All randomness flows through one Rng seeded from
// spec.seed, and nothing ever iterates spec.params, so a spec is a complete,
// order-independent description of the corpus.
// ---------------------------------------------------------------------------

/// Cumulative Zipf weights: cum[i] = sum_{r=1..i+1} r^-exponent.
std::vector<double> ZipfCumulative(size_t n, double exponent) {
  std::vector<double> cum(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cum[i] = acc;
  }
  return cum;
}

size_t SampleCumulative(const std::vector<double>& cum, Rng& rng) {
  double r = rng.UniformDouble() * cum.back();
  size_t idx = static_cast<size_t>(
      std::upper_bound(cum.begin(), cum.end(), r) - cum.begin());
  return std::min(idx, cum.size() - 1);
}

/// Partitions items [0, num_items) into `clusters` contiguous blocks.
/// Returns per-item cluster labels; blocks differ in size by at most one.
std::vector<int> ContiguousClusters(size_t num_items, size_t clusters) {
  std::vector<int> label(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    label[i] = static_cast<int>(i * clusters / num_items);
  }
  return label;
}

/// [begin, end) item range of cluster `c` under ContiguousClusters.
std::pair<size_t, size_t> ClusterRange(size_t num_items, size_t clusters,
                                       size_t c) {
  return {c * num_items / clusters, (c + 1) * num_items / clusters};
}

int UniformClusterItem(size_t num_items, size_t clusters, size_t c,
                       Rng& rng) {
  auto [lo, hi] = ClusterRange(num_items, clusters, c);
  return static_cast<int>(lo + rng.Uniform(hi - lo));
}

/// Zipf item within cluster `c`, using a per-cluster cumulative table
/// (index into the table is the within-cluster rank).
int ZipfClusterItem(size_t num_items, size_t clusters, size_t c,
                    const std::vector<std::vector<double>>& cluster_cum,
                    Rng& rng) {
  auto [lo, hi] = ClusterRange(num_items, clusters, c);
  (void)hi;
  return static_cast<int>(lo + SampleCumulative(cluster_cum[c], rng));
}

std::vector<std::vector<double>> PerClusterZipf(size_t num_items,
                                                size_t clusters,
                                                double exponent) {
  std::vector<std::vector<double>> cum(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    auto [lo, hi] = ClusterRange(num_items, clusters, c);
    cum[c] = ZipfCumulative(hi - lo, exponent);
  }
  return cum;
}

Status CheckProbability(const char* generator, const char* key, double v) {
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument(std::string(generator) + ": param '" +
                                   key + "' must be in [0,1], got " +
                                   FormatFloat(v, 4));
  }
  return Status::OK();
}

Status CheckClusters(const char* generator, int64_t clusters,
                     size_t num_items) {
  if (clusters < 1 || static_cast<size_t>(clusters) > num_items) {
    return Status::InvalidArgument(
        std::string(generator) +
        ": param 'clusters' must be in [1, num_items]");
  }
  return Status::OK();
}

void AddMetric(ScenarioReport* report, const std::string& key, double v) {
  report->metrics.emplace_back(key, v);
}

void FillCommon(ScenarioReport* report, const ScenarioSpec& spec,
                const Dataset& ds) {
  report->generator = spec.generator;
  report->dataset_name = ds.name();
  report->num_users = ds.num_users();
  report->num_items = ds.num_items();
  report->num_events = ds.num_actions();
}

std::string DatasetName(const ScenarioSpec& spec) {
  return spec.name.empty() ? spec.generator : spec.name;
}

// ---------------------------------------------------------------------------
// drift: every user starts in one interest cluster and linearly ramps to a
// target cluster over their sequence — the Fig.-1 interest-drift regime,
// isolated from all other structure.
// ---------------------------------------------------------------------------

StatusOr<Dataset> GenerateDrift(const ScenarioSpec& spec,
                                ScenarioReport* report) {
  ScenarioParams p(spec);
  const int64_t clusters = p.Int("clusters", 8);
  const double noise = p.Double("noise", 0.1);
  SCCF_RETURN_NOT_OK(p.status());
  SCCF_RETURN_NOT_OK(CheckClusters("drift", clusters, spec.num_items));
  SCCF_RETURN_NOT_OK(CheckProbability("drift", "noise", noise));

  const size_t U = spec.num_users, M = spec.num_items,
               E = spec.events_per_user;
  const size_t C = static_cast<size_t>(clusters);
  Rng rng(spec.seed);

  std::vector<int> start(U), target(U);
  for (size_t u = 0; u < U; ++u) {
    start[u] = static_cast<int>(rng.Uniform(C));
    target[u] = C < 2 ? start[u]
                      : static_cast<int>(
                            (start[u] + 1 + rng.Uniform(C - 1)) % C);
  }

  // Round-robin interleave: position j of every user, then j+1, so the
  // global clock advances uniformly across users.
  std::vector<Interaction> events;
  events.reserve(U * E);
  int64_t ts = 0;
  for (size_t j = 0; j < E; ++j) {
    const double progress =
        E > 1 ? static_cast<double>(j) / static_cast<double>(E - 1) : 1.0;
    for (size_t u = 0; u < U; ++u) {
      int item;
      if (rng.Bernoulli(noise)) {
        item = static_cast<int>(rng.Uniform(M));
      } else {
        size_t c = rng.Bernoulli(progress)
                       ? static_cast<size_t>(target[u])
                       : static_cast<size_t>(start[u]);
        item = UniformClusterItem(M, C, c, rng);
      }
      events.push_back({static_cast<int>(u), item, ts++});
    }
  }

  // Achieved drift: share of events in the user's start vs target cluster,
  // split at the sequence midpoint.
  const std::vector<int> item_cluster = ContiguousClusters(M, C);
  double start_first = 0, start_second = 0, target_first = 0,
         target_second = 0;
  size_t first = 0, second = 0;
  for (const Interaction& e : events) {
    const bool in_first =
        static_cast<size_t>(e.timestamp) < (U * E) / 2;
    const int c = item_cluster[e.item];
    (in_first ? first : second)++;
    if (c == start[e.user]) (in_first ? start_first : start_second)++;
    if (c == target[e.user]) (in_first ? target_first : target_second)++;
  }

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromInteractions(DatasetName(spec),
                                            std::move(events)));
  FillCommon(report, spec, ds);
  AddMetric(report, "start_share_first_half", start_first / first);
  AddMetric(report, "start_share_second_half", start_second / second);
  AddMetric(report, "target_share_first_half", target_first / first);
  AddMetric(report, "target_share_second_half", target_second / second);
  report->notes = "linear ramp from start to target cluster per user";
  return ds;
}

// ---------------------------------------------------------------------------
// flash_sale: steady cluster-affine baseline traffic with a global window
// of event time where a small hot-item set absorbs most clicks — the
// flash-sale / promotion spike regime.
// ---------------------------------------------------------------------------

StatusOr<Dataset> GenerateFlashSale(const ScenarioSpec& spec,
                                    ScenarioReport* report) {
  ScenarioParams p(spec);
  const int64_t clusters = p.Int("clusters", 8);
  const int64_t sale_items = p.Int("sale_items", 8);
  const double sale_start = p.Double("sale_start", 0.45);
  const double sale_len = p.Double("sale_len", 0.1);
  const double sale_intensity = p.Double("sale_intensity", 0.8);
  const double affinity = p.Double("affinity", 0.7);
  const double zipf = p.Double("zipf", 1.0);
  SCCF_RETURN_NOT_OK(p.status());
  SCCF_RETURN_NOT_OK(CheckClusters("flash_sale", clusters, spec.num_items));
  SCCF_RETURN_NOT_OK(CheckProbability("flash_sale", "sale_start", sale_start));
  SCCF_RETURN_NOT_OK(CheckProbability("flash_sale", "sale_len", sale_len));
  SCCF_RETURN_NOT_OK(
      CheckProbability("flash_sale", "sale_intensity", sale_intensity));
  SCCF_RETURN_NOT_OK(CheckProbability("flash_sale", "affinity", affinity));
  if (sale_start + sale_len > 1.0) {
    return Status::InvalidArgument(
        "flash_sale: sale_start + sale_len must be <= 1");
  }
  if (sale_items < 1 ||
      static_cast<size_t>(sale_items) > spec.num_items) {
    return Status::InvalidArgument(
        "flash_sale: param 'sale_items' must be in [1, num_items]");
  }
  if (zipf <= 0.0) {
    return Status::InvalidArgument("flash_sale: param 'zipf' must be > 0");
  }

  const size_t U = spec.num_users, M = spec.num_items,
               E = spec.events_per_user;
  const size_t C = static_cast<size_t>(clusters);
  Rng rng(spec.seed);

  std::vector<int> preferred(U);
  for (size_t u = 0; u < U; ++u)
    preferred[u] = static_cast<int>(rng.Uniform(C));

  // Hot set: `sale_items` distinct items drawn from the whole catalog.
  std::vector<int> perm(M);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<int> hot(perm.begin(), perm.begin() + sale_items);

  const auto cluster_cum = PerClusterZipf(M, C, zipf);
  const size_t total = U * E;
  const size_t window_lo = static_cast<size_t>(total * sale_start);
  const size_t window_hi =
      static_cast<size_t>(total * (sale_start + sale_len));

  std::vector<bool> is_hot(M, false);
  for (int h : hot) is_hot[h] = true;

  std::vector<Interaction> events;
  events.reserve(total);
  size_t hot_in = 0, hot_out = 0, in_count = 0;
  for (size_t ts = 0; ts < total; ++ts) {
    const size_t u = ts % U;
    const bool in_window = ts >= window_lo && ts < window_hi;
    int item;
    if (in_window && rng.Bernoulli(sale_intensity)) {
      item = hot[rng.Uniform(hot.size())];
    } else {
      size_t c = rng.Bernoulli(affinity)
                     ? static_cast<size_t>(preferred[u])
                     : rng.Uniform(C);
      item = ZipfClusterItem(M, C, c, cluster_cum, rng);
    }
    if (in_window) {
      ++in_count;
      hot_in += is_hot[item];
    } else {
      hot_out += is_hot[item];
    }
    events.push_back(
        {static_cast<int>(u), item, static_cast<int64_t>(ts)});
  }

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromInteractions(DatasetName(spec),
                                            std::move(events)));
  FillCommon(report, spec, ds);
  const size_t out_count = total - in_count;
  AddMetric(report, "sale_share_in_window",
            in_count ? static_cast<double>(hot_in) / in_count : 0.0);
  AddMetric(report, "sale_share_outside",
            out_count ? static_cast<double>(hot_out) / out_count : 0.0);
  AddMetric(report, "window_begin_ts", static_cast<double>(window_lo));
  AddMetric(report, "window_end_ts", static_cast<double>(window_hi));
  report->notes = "hot-set spike confined to the sale window";
  return ds;
}

// ---------------------------------------------------------------------------
// power_law: Zipf skew on both sides — a few blockbuster items absorb most
// clicks and a few power users emit most events. Ranks are assigned by a
// seeded shuffle so popularity is uncorrelated with id order.
// ---------------------------------------------------------------------------

StatusOr<Dataset> GeneratePowerLaw(const ScenarioSpec& spec,
                                   ScenarioReport* report) {
  ScenarioParams p(spec);
  const double item_exponent = p.Double("item_exponent", 1.1);
  const double user_exponent = p.Double("user_exponent", 0.8);
  SCCF_RETURN_NOT_OK(p.status());
  if (item_exponent <= 0.0 || user_exponent <= 0.0) {
    return Status::InvalidArgument(
        "power_law: params 'item_exponent'/'user_exponent' must be > 0");
  }

  const size_t U = spec.num_users, M = spec.num_items,
               E = spec.events_per_user;
  Rng rng(spec.seed);

  std::vector<int> item_by_rank(M);
  std::iota(item_by_rank.begin(), item_by_rank.end(), 0);
  rng.Shuffle(item_by_rank);
  std::vector<int> user_by_rank(U);
  std::iota(user_by_rank.begin(), user_by_rank.end(), 0);
  rng.Shuffle(user_by_rank);

  const auto item_cum = ZipfCumulative(M, item_exponent);
  const auto user_cum = ZipfCumulative(U, user_exponent);

  const size_t total = U * E;
  std::vector<Interaction> events;
  events.reserve(total);
  int64_t ts = 0;
  // Round zero gives every user one event so the compacted corpus keeps
  // exactly num_users users; the remaining traffic is fully Zipf.
  for (size_t u = 0; u < U; ++u) {
    events.push_back({static_cast<int>(u),
                      item_by_rank[SampleCumulative(item_cum, rng)], ts++});
  }
  for (size_t i = U; i < total; ++i) {
    events.push_back({user_by_rank[SampleCumulative(user_cum, rng)],
                      item_by_rank[SampleCumulative(item_cum, rng)], ts++});
  }

  // Achieved skew: traffic share of the busiest decile of items/users.
  auto top_decile_share = [total](std::vector<size_t> counts) {
    std::sort(counts.begin(), counts.end(), std::greater<size_t>());
    const size_t k = std::max<size_t>(1, counts.size() / 10);
    size_t top = 0;
    for (size_t i = 0; i < k; ++i) top += counts[i];
    return static_cast<double>(top) / static_cast<double>(total);
  };
  std::vector<size_t> item_counts(M, 0), user_counts(U, 0);
  for (const Interaction& e : events) {
    item_counts[e.item]++;
    user_counts[e.user]++;
  }

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromInteractions(DatasetName(spec),
                                            std::move(events)));
  FillCommon(report, spec, ds);
  AddMetric(report, "item_top_decile_share",
            top_decile_share(std::move(item_counts)));
  AddMetric(report, "user_top_decile_share",
            top_decile_share(std::move(user_counts)));
  report->notes = "Zipf item popularity and user activity, shuffled ranks";
  return ds;
}

// ---------------------------------------------------------------------------
// bursty: traffic arrives as dense per-user sessions (geometric length)
// with strong within-session item locality; whole sessions are shuffled
// onto the global clock so each one occupies a consecutive timestamp run.
// ---------------------------------------------------------------------------

StatusOr<Dataset> GenerateBursty(const ScenarioSpec& spec,
                                 ScenarioReport* report) {
  ScenarioParams p(spec);
  const double session_len = p.Double("session_len", 6.0);
  const double locality = p.Double("locality", 0.85);
  const double affinity = p.Double("affinity", 0.6);
  const int64_t clusters = p.Int("clusters", 8);
  SCCF_RETURN_NOT_OK(p.status());
  SCCF_RETURN_NOT_OK(CheckClusters("bursty", clusters, spec.num_items));
  SCCF_RETURN_NOT_OK(CheckProbability("bursty", "locality", locality));
  SCCF_RETURN_NOT_OK(CheckProbability("bursty", "affinity", affinity));
  if (session_len < 1.0) {
    return Status::InvalidArgument(
        "bursty: param 'session_len' must be >= 1");
  }

  const size_t U = spec.num_users, M = spec.num_items,
               E = spec.events_per_user;
  const size_t C = static_cast<size_t>(clusters);
  Rng rng(spec.seed);

  std::vector<int> preferred(U);
  for (size_t u = 0; u < U; ++u)
    preferred[u] = static_cast<int>(rng.Uniform(C));

  struct Session {
    int user;
    std::vector<int> items;
  };
  std::vector<Session> sessions;
  size_t locality_hits = 0;
  const double stop_p = 1.0 / session_len;
  const std::vector<int> item_cluster = ContiguousClusters(M, C);
  for (size_t u = 0; u < U; ++u) {
    size_t remaining = E;
    while (remaining > 0) {
      size_t len = 1;
      while (len < remaining && !rng.Bernoulli(stop_p)) ++len;
      const size_t c = rng.Bernoulli(affinity)
                           ? static_cast<size_t>(preferred[u])
                           : rng.Uniform(C);
      Session s;
      s.user = static_cast<int>(u);
      s.items.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        int item = rng.Bernoulli(locality)
                       ? UniformClusterItem(M, C, c, rng)
                       : static_cast<int>(rng.Uniform(M));
        locality_hits += item_cluster[item] == static_cast<int>(c);
        s.items.push_back(item);
      }
      sessions.push_back(std::move(s));
      remaining -= len;
    }
  }

  // Sessions hit the global clock in shuffled order, each as one
  // consecutive timestamp block — the burst.
  rng.Shuffle(sessions);
  std::vector<Interaction> events;
  events.reserve(U * E);
  int64_t ts = 0;
  for (const Session& s : sessions) {
    for (int item : s.items) events.push_back({s.user, item, ts++});
  }

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromInteractions(DatasetName(spec),
                                            std::move(events)));

  // Burstiness: fraction of each user's consecutive timestamp gaps that
  // equal 1 (i.e. the next event of the same user is the very next global
  // event). Round-robin traffic scores ~0 here; sessions score high.
  size_t unit_gaps = 0, gaps = 0;
  for (size_t u = 0; u < ds.num_users(); ++u) {
    const auto& t = ds.timestamps(u);
    for (size_t i = 1; i < t.size(); ++i) {
      ++gaps;
      unit_gaps += (t[i] - t[i - 1]) == 1;
    }
  }

  FillCommon(report, spec, ds);
  AddMetric(report, "mean_session_len",
            sessions.empty()
                ? 0.0
                : static_cast<double>(U * E) / sessions.size());
  AddMetric(report, "locality_share",
            static_cast<double>(locality_hits) / (U * E));
  AddMetric(report, "unit_gap_share",
            gaps ? static_cast<double>(unit_gaps) / gaps : 0.0);
  report->notes = "geometric sessions, shuffled onto consecutive ts blocks";
  return ds;
}

// ---------------------------------------------------------------------------
// hot_shard: adversarial user-id selection against the serving layer's
// shard hash. Keeps only candidate ids that land on the first `hot_shards`
// of `shards` under SplitMix64 — the exact map core/realtime.cc partitions
// users with — so a sharded engine serving this corpus by original id sees
// all traffic concentrated on a few shards.
// ---------------------------------------------------------------------------

StatusOr<Dataset> GenerateHotShard(const ScenarioSpec& spec,
                                   ScenarioReport* report) {
  ScenarioParams p(spec);
  const int64_t shards = p.Int("shards", 8);
  const int64_t hot_shards = p.Int("hot_shards", 1);
  const int64_t clusters = p.Int("clusters", 8);
  const double affinity = p.Double("affinity", 0.7);
  const double zipf = p.Double("zipf", 1.0);
  SCCF_RETURN_NOT_OK(p.status());
  SCCF_RETURN_NOT_OK(CheckClusters("hot_shard", clusters, spec.num_items));
  SCCF_RETURN_NOT_OK(CheckProbability("hot_shard", "affinity", affinity));
  if (shards < 1) {
    return Status::InvalidArgument("hot_shard: param 'shards' must be >= 1");
  }
  if (hot_shards < 1 || hot_shards > shards) {
    return Status::InvalidArgument(
        "hot_shard: param 'hot_shards' must be in [1, shards]");
  }
  if (zipf <= 0.0) {
    return Status::InvalidArgument("hot_shard: param 'zipf' must be > 0");
  }

  const size_t U = spec.num_users, M = spec.num_items,
               E = spec.events_per_user;
  const size_t C = static_cast<size_t>(clusters);
  Rng rng(spec.seed);

  // Scan candidate ids upward, keeping the ones the serving shard hash
  // sends to a hot shard. Expected scan length U * shards / hot_shards.
  std::vector<int> user_ids;
  user_ids.reserve(U);
  for (uint32_t c = 0; user_ids.size() < U; ++c) {
    const uint64_t shard =
        SplitMix64(static_cast<uint64_t>(c)) %
        static_cast<uint64_t>(shards);
    if (shard < static_cast<uint64_t>(hot_shards)) {
      user_ids.push_back(static_cast<int>(c));
    }
  }

  std::vector<int> preferred(U);
  for (size_t u = 0; u < U; ++u)
    preferred[u] = static_cast<int>(rng.Uniform(C));
  const auto cluster_cum = PerClusterZipf(M, C, zipf);

  std::vector<Interaction> events;
  events.reserve(U * E);
  int64_t ts = 0;
  for (size_t j = 0; j < E; ++j) {
    for (size_t u = 0; u < U; ++u) {
      const size_t c = rng.Bernoulli(affinity)
                           ? static_cast<size_t>(preferred[u])
                           : rng.Uniform(C);
      events.push_back({user_ids[u],
                        ZipfClusterItem(M, C, c, cluster_cum, rng), ts++});
    }
  }

  // Achieved imbalance over ORIGINAL ids (the Dataset compacts ids; the
  // adversarial property lives in original_user_ids(), which is what
  // benches must feed the engine).
  std::vector<size_t> per_shard(static_cast<size_t>(shards), 0);
  for (int id : user_ids) {
    per_shard[SplitMix64(static_cast<uint64_t>(
                  static_cast<uint32_t>(id))) %
              static_cast<uint64_t>(shards)] += E;
  }
  const size_t max_shard = *std::max_element(per_shard.begin(),
                                             per_shard.end());

  SCCF_ASSIGN_OR_RETURN(
      Dataset ds, Dataset::FromInteractions(DatasetName(spec),
                                            std::move(events)));
  FillCommon(report, spec, ds);
  AddMetric(report, "shards", static_cast<double>(shards));
  AddMetric(report, "hot_shards", static_cast<double>(hot_shards));
  AddMetric(report, "max_shard_share",
            static_cast<double>(max_shard) / (U * E));
  report->notes =
      "user ids chosen to collide under the serving SplitMix64 shard hash; "
      "drive the engine with original_user_ids()";
  return ds;
}

}  // namespace

const std::vector<GeneratorInfo>& SyntheticGenerators() {
  static const std::vector<GeneratorInfo> kGenerators = {
      {"bursty",
       {"session_len", "locality", "affinity", "clusters"},
       &GenerateBursty},
      {"drift", {"clusters", "noise"}, &GenerateDrift},
      {"flash_sale",
       {"clusters", "sale_items", "sale_start", "sale_len",
        "sale_intensity", "affinity", "zipf"},
       &GenerateFlashSale},
      {"hot_shard",
       {"shards", "hot_shards", "clusters", "affinity", "zipf"},
       &GenerateHotShard},
      {"power_law", {"item_exponent", "user_exponent"}, &GeneratePowerLaw},
  };
  return kGenerators;
}

}  // namespace sccf::scenario::internal
