#ifndef SCCF_PERSIST_SNAPSHOT_H_
#define SCCF_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/realtime.h"
#include "util/status.h"

namespace sccf::persist {

/// Versioned full-service snapshot file. Layout:
///
///   magic "SCCFSNAP" | u32 version
///   section*: u8 tag | u64 payload_len | u32 crc32(payload) | payload
///
/// with one 'M' (meta) section, one 'S' section per shard (u64 shard
/// index + the opaque RealTimeService::ExportShard payload), and a
/// closing 'E' section whose presence proves the writer reached the end.
/// Every byte after the version lives inside a CRC-covered section, so
/// any bit flip or truncation surfaces as a clean Status error — the
/// fault-injection suite sweeps exactly this property.
///
/// Consistency: each shard's section is a point-in-time cut taken under
/// that shard's lock, embedding its journal sequence number. There is no
/// global barrier — cross-shard skew is resolved at recovery by replaying
/// each journal record iff its seq is newer than its shard's snapshot.

/// Parsed 'M' section, validated against the recovering service.
struct SnapshotMeta {
  uint64_t num_shards = 0;
  uint64_t dim = 0;
  uint32_t index_kind = 0;
  uint32_t metric = 0;
  /// quant::Storage of the serialized indexes (version >= 2). A service
  /// constructed in the other mode cannot restore these shard blobs, so
  /// recovery rejects the mismatch up front instead of failing per shard.
  uint32_t storage = 0;
};

/// Serializes the whole service (meta + every shard, one shard lock at a
/// time) into snapshot bytes.
StatusOr<std::string> EncodeSnapshot(const core::RealTimeService& service);

/// Verifies framing + checksums and splits `bytes` into meta and one
/// payload view per shard (`(*shards)[i]` borrows `bytes`). Rejects
/// missing/duplicate shard sections, a missing end marker, and trailing
/// bytes.
Status DecodeSnapshot(std::string_view bytes, SnapshotMeta* meta,
                      std::vector<std::string_view>* shards);

/// EncodeSnapshot + atomic write (tmp, fsync, rename, dir fsync).
Status WriteSnapshotFile(const core::RealTimeService& service,
                         const std::string& path);

/// Reads + decodes `path`, validates meta against `service` (shard
/// count, dim, index kind, metric), and restores every shard. On any
/// error the service may have some shards restored and others not —
/// callers treat a failed recovery as fatal, not partial.
Status LoadSnapshotFile(const std::string& path,
                        core::RealTimeService* service);

}  // namespace sccf::persist

#endif  // SCCF_PERSIST_SNAPSHOT_H_
