#include "persist/recovery.h"

#include <algorithm>
#include <vector>

#include "persist/fs.h"
#include "persist/snapshot.h"
#include "util/logging.h"

namespace sccf::persist {

StatusOr<std::unique_ptr<PersistenceManager>> PersistenceManager::Open(
    const std::string& dir, bool journal_fsync) {
  SCCF_RETURN_NOT_OK(EnsureDir(dir));
  return std::unique_ptr<PersistenceManager>(
      new PersistenceManager(dir, journal_fsync));
}

Status PersistenceManager::Recover(core::RealTimeService* service) {
  if (PathExists(snapshot_path())) {
    SCCF_RETURN_NOT_OK(LoadSnapshotFile(snapshot_path(), service));
  }
  uint64_t max_gen = 0;
  SCCF_RETURN_NOT_OK(ReplayJournals(service, &max_gen));
  // Always start a fresh generation: the previous one may end in a torn
  // record, and appending after a tear would leave unreachable garbage
  // in the middle of a file.
  return OpenGeneration(max_gen + 1);
}

Status PersistenceManager::ReplayJournals(core::RealTimeService* service,
                                          uint64_t* max_gen) const {
  SCCF_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirFiles(dir_));
  std::vector<uint64_t> gens;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseJournalFileName(name, &gen)) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  *max_gen = gens.empty() ? 0 : gens.back();

  for (size_t g = 0; g < gens.size(); ++g) {
    const std::string path = dir_ + "/" + JournalFileName(gens[g]);
    SCCF_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    // Only the newest generation can legitimately end mid-record (the
    // crash interrupted an append there); a bad record in an older,
    // rotated-out generation means real data loss and fails recovery.
    const bool last = g + 1 == gens.size();
    std::vector<JournalRecord> records;
    size_t valid_prefix = 0;
    SCCF_RETURN_NOT_OK(
        DecodeJournal(bytes, /*allow_torn_tail=*/last, &records,
                      &valid_prefix));
    if (last && valid_prefix < bytes.size()) {
      SCCF_LOG_INFO << "journal " << path << ": discarding torn tail ("
                    << bytes.size() - valid_prefix << " bytes)";
    }
    for (const JournalRecord& record : records) {
      SCCF_RETURN_NOT_OK(service->ApplyJournalRecord(
          record.shard, record.seq, record.events));
    }
  }
  return Status::OK();
}

Status PersistenceManager::OpenGeneration(uint64_t gen) {
  const std::string path = dir_ + "/" + JournalFileName(gen);
  SCCF_ASSIGN_OR_RETURN(std::unique_ptr<JournalWriter> writer,
                        JournalWriter::Open(path, journal_fsync_));
  // Make the new file name durable before anything is appended to it.
  SCCF_RETURN_NOT_OK(SyncDir(dir_));
  std::lock_guard<std::mutex> lock(mu_);
  writer_ = std::move(writer);
  gen_ = gen;
  return Status::OK();
}

Status PersistenceManager::Save(const core::RealTimeService& service) {
  uint64_t gen_at_start = 0;
  bool sealed_at_start = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr) {
      return Status::FailedPrecondition("Recover must run before Save");
    }
    gen_at_start = gen_;
    sealed_at_start = writer_->failed();
    // Flush the current generation before exporting: every record the
    // snapshot will supersede must be on disk first, or a crash between
    // the snapshot rename and the next append could lose acknowledged
    // (journaled-but-unsynced) events while claiming a newer snapshot.
    // A sealed generation is exempt: it is deleted below (everything it
    // acknowledged is in the snapshot this Save writes), and its fd may
    // be stuck in a post-error state where fsync can never succeed —
    // requiring the sync would make rotation, the only remedy for a
    // sealed journal, impossible.
    if (!sealed_at_start) {
      SCCF_RETURN_NOT_OK(writer_->Sync());
    }
  }

  // Export + atomic replace. Shard locks are taken one at a time inside
  // EncodeSnapshot; mu_ is NOT held here (lock order: shard -> mu_).
  SCCF_RETURN_NOT_OK(WriteSnapshotFile(service, snapshot_path()));

  // GC: generations older than the one current at export start are fully
  // covered by the snapshot (their records all predate every shard's
  // exported seq). The current generation may hold post-export records,
  // so it survives until the next Save — unless it was already sealed
  // when this Save began: a sealed generation accepted nothing after
  // its failed append, so every record it acknowledged is in the
  // snapshot, and its damaged tail may hold a fully-written record the
  // service never acknowledged (and whose seq the first post-rotation
  // append will reuse). Deleting it is the only way replay can never
  // apply that record ahead of the acknowledged one. (A seal that lands
  // *during* the export keeps its generation one more Save; the
  // append-time ftruncate has normally removed the damage by then.)
  const uint64_t gc_below = gen_at_start + (sealed_at_start ? 1 : 0);
  SCCF_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirFiles(dir_));
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseJournalFileName(name, &gen) && gen < gc_below) {
      SCCF_RETURN_NOT_OK(RemoveFileIfExists(dir_ + "/" + name));
    }
  }
  SCCF_RETURN_NOT_OK(SyncDir(dir_));
  return OpenGeneration(gen_at_start + 1);
}

Status PersistenceManager::Append(
    size_t shard, uint64_t seq,
    std::span<const core::RealTimeService::Event> events) {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("journal not open (Recover first)");
  }
  return writer_->Append(shard, seq, events);
}

uint64_t PersistenceManager::journal_gen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gen_;
}

}  // namespace sccf::persist
