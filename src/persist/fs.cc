#include "persist/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/syscall_shim.h"

namespace sccf::persist {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError(Errno("mkdir", dir));
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(Errno("open", path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = sys::Read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("open", tmp));

  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        sys::Write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(Errno("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (sync && sys::Fsync(fd) != 0) {
    const Status st = Status::IoError(Errno("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("close", tmp));
  }
  if (sys::Rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::IoError(Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  if (sync) {
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    return SyncDir(dir);
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IoError(Errno("unlink", path));
}

StatusOr<std::vector<std::string>> ListDirFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IoError(Errno("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
        S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  return names;
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(Errno("open dir", dir));
  const int rc = sys::Fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(Errno("fsync dir", dir));
  return Status::OK();
}

}  // namespace sccf::persist
