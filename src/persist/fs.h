#ifndef SCCF_PERSIST_FS_H_
#define SCCF_PERSIST_FS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sccf::persist {

/// POSIX file helpers underpinning the persistence layer's crash-safety
/// story. Every durable artifact goes through WriteFileAtomic, so a
/// SIGKILL (or power cut, with `sync`) at any instant leaves either the
/// previous complete file or the new complete file at the target path —
/// never a torn one.

/// Creates `dir` (one level) if it does not exist. OK if it already does.
Status EnsureDir(const std::string& dir);

/// True iff `path` exists (any file type).
bool PathExists(const std::string& path);

/// Reads the whole file. IoError (not NotFound) when missing/unreadable —
/// callers that treat absence as normal should PathExists first.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `<path>.tmp`, optionally fsyncs it, renames over
/// `path`, then (with `sync`) fsyncs the parent directory so the rename
/// itself is durable. The temp file is unlinked on any failure.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync);

/// Unlinks `path`. OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Names (not paths) of regular files in `dir`, unsorted.
StatusOr<std::vector<std::string>> ListDirFiles(const std::string& dir);

/// fsyncs the directory itself (making renames/unlinks in it durable).
Status SyncDir(const std::string& dir);

}  // namespace sccf::persist

#endif  // SCCF_PERSIST_FS_H_
