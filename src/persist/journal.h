#ifndef SCCF_PERSIST_JOURNAL_H_
#define SCCF_PERSIST_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/realtime.h"
#include "util/status.h"

namespace sccf::persist {

/// Append-only ingest journal: the write-ahead log behind the shard
/// snapshots. One file per generation (`journal-<gen>`); every record is
/// one (batch, shard) ingest group, framed as
///
///   u32 payload_len | u32 crc32(payload) | payload
///   payload: u32 shard | u64 seq | u32 num_events
///            per event: i32 user | i32 item | i64 ts
///
/// so a reader can walk the file front to back, verify each record
/// independently, and — in the newest generation only — treat the first
/// torn or corrupt record as the clean end of history (a crash mid-append
/// legitimately leaves a partial record at the tail; anything after it is
/// unreachable and discarded).

/// One decoded journal record.
struct JournalRecord {
  size_t shard = 0;
  uint64_t seq = 0;
  std::vector<core::RealTimeService::Event> events;
};

/// Serializes one record into its on-disk framing (exposed for tests).
std::string EncodeJournalRecord(size_t shard, uint64_t seq,
                                std::span<const core::RealTimeService::Event> events);

/// Decodes every record in `bytes` (one journal file's contents) into
/// `*out`. With `allow_torn_tail`, decoding stops cleanly at the first
/// bad record and reports how many bytes were accepted via
/// `*valid_prefix`; without it any bad record is an IoError. `*out`
/// always holds exactly the records of the accepted prefix.
Status DecodeJournal(std::string_view bytes, bool allow_torn_tail,
                     std::vector<JournalRecord>* out, size_t* valid_prefix);

/// Appender for one journal generation file — the core::IngestSink the
/// engine attaches to the service. Appends are serialized by an internal
/// mutex; callers hold at most one shard lock when appending (see the
/// service's lock-ordering contract), so the nesting is always
/// shard lock -> journal mutex and never the reverse. Each record is
/// written with a single write(2) on an O_APPEND descriptor: once Append
/// returns, the kernel owns the bytes, so a SIGKILL'd process loses
/// nothing (machine-crash durability additionally needs `fsync_each`).
///
/// A failed append SEALS the writer: the failure may have left the
/// record fully on disk (fsync failed after a complete write) or as a
/// CRC-invalid fragment (short write), and in either case the service
/// did not bump the shard's seq — so a later append would reuse the
/// same seq (replay would then apply the never-acknowledged record and
/// silently skip the acknowledged one) or land unreachable bytes after
/// the fragment (replay's torn-tail scan would discard them). The
/// writer first tries to ftruncate the damage back out, then refuses
/// every subsequent Append with FailedPrecondition until the manager
/// rotates to a fresh generation (a successful Save).
class JournalWriter : public core::IngestSink {
 public:
  /// Opens (creating or appending to) the file at `path`.
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, bool fsync_each);

  ~JournalWriter() override;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  Status Append(size_t shard, uint64_t seq,
                std::span<const core::RealTimeService::Event> events) override;

  /// fsyncs the file regardless of `fsync_each` (e.g. before a snapshot).
  Status Sync();

  const std::string& path() const { return path_; }

  /// True once an append has failed; every further Append is refused.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Seals the writer as if an append had just failed (fault injection
  /// for the rotation/GC tests; production code never calls this).
  void PoisonForTesting() {
    failed_.store(true, std::memory_order_release);
  }

 private:
  JournalWriter(std::string path, int fd, bool fsync_each)
      : path_(std::move(path)), fd_(fd), fsync_each_(fsync_each) {}

  /// Marks the generation damaged after a failed write/fsync, trying
  /// first to cut the damaged record back out of the file. Returns an
  /// IoError carrying `msg`. Called with mu_ held.
  Status Poison(std::string msg, int64_t record_start);

  std::string path_;
  int fd_ = -1;
  bool fsync_each_ = false;
  std::atomic<bool> failed_{false};
  std::mutex mu_;
};

/// `journal-<gen>` for the given generation number.
std::string JournalFileName(uint64_t gen);

/// Parses a `journal-<gen>` file name; returns false for anything else.
bool ParseJournalFileName(const std::string& name, uint64_t* gen);

}  // namespace sccf::persist

#endif  // SCCF_PERSIST_JOURNAL_H_
