#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/coding.h"
#include "util/syscall_shim.h"

namespace sccf::persist {

namespace {
// Sanity bound on one record's payload. The largest legitimate record is
// one ingest batch's events for one shard; 1 GiB of 16-byte events is
// ~67M events in one batch — far beyond anything the serving path
// accepts — so a bigger length field can only be corruption.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

// Minimum payload: u32 shard + u64 seq + u32 event count.
constexpr uint32_t kMinRecordPayload = 16;

// True iff `bytes` begins with a complete, CRC-valid, structurally
// consistent record. This is the probe the torn-tail scan runs over the
// region it is about to discard: a hit there means the damage cannot be
// a torn append. The cheap structural checks run before the CRC so a
// scan over garbage rarely hashes anything, and a zero-filled page
// (len = 0, crc = 0 = Crc32("")) is rejected by the length floor rather
// than mistaken for a record.
bool StartsWithValidRecord(std::string_view bytes) {
  uint32_t len = 0, crc = 0;
  ByteReader header(bytes);
  if (!header.ReadFixed32(&len).ok() || !header.ReadFixed32(&crc).ok()) {
    return false;
  }
  if (len < kMinRecordPayload || len > kMaxRecordPayload ||
      len > bytes.size() - 8) {
    return false;
  }
  const std::string_view payload = bytes.substr(8, len);
  uint32_t shard = 0, count = 0;
  uint64_t seq = 0;
  ByteReader reader(payload);
  if (!reader.ReadFixed32(&shard).ok() || !reader.ReadFixed64(&seq).ok() ||
      !reader.ReadFixed32(&count).ok()) {
    return false;
  }
  if (static_cast<uint64_t>(count) * 16 != reader.remaining()) return false;
  return Crc32(payload) == crc;
}
}  // namespace

std::string EncodeJournalRecord(
    size_t shard, uint64_t seq,
    std::span<const core::RealTimeService::Event> events) {
  std::string payload;
  payload.reserve(16 + events.size() * 16);
  PutFixed32(&payload, static_cast<uint32_t>(shard));
  PutFixed64(&payload, seq);
  PutFixed32(&payload, static_cast<uint32_t>(events.size()));
  for (const core::RealTimeService::Event& e : events) {
    PutI32(&payload, e.user);
    PutI32(&payload, e.item);
    PutI64(&payload, e.ts);
  }
  std::string record;
  record.reserve(8 + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, Crc32(payload));
  record += payload;
  return record;
}

Status DecodeJournal(std::string_view bytes, bool allow_torn_tail,
                     std::vector<JournalRecord>* out, size_t* valid_prefix) {
  out->clear();
  size_t pos = 0;
  if (valid_prefix != nullptr) *valid_prefix = 0;

  const auto tear = [&](const char* what) -> Status {
    if (!allow_torn_tail) {
      return Status::IoError(std::string("journal corruption (") + what +
                             ") at byte " + std::to_string(pos));
    }
    // A torn append can only be the LAST thing in the file: records go
    // down back to back with one write(2) each, and a writer that hits
    // an error seals its generation. So if a complete valid record
    // exists anywhere past the damage, this is mid-file corruption (a
    // flipped bit, an overwritten region) and truncating here would
    // silently drop acknowledged records — fail recovery instead. The
    // structural pre-checks inside the probe make the scan ~O(tail)
    // with almost no CRC work on garbage.
    for (size_t probe = pos + 1;
         probe + 8 + kMinRecordPayload <= bytes.size(); ++probe) {
      if (StartsWithValidRecord(bytes.substr(probe))) {
        return Status::IoError(
            std::string("journal corruption (") + what + ") at byte " +
            std::to_string(pos) + ": intact record at byte " +
            std::to_string(probe) + " past the damage, so this is not a "
            "torn tail");
      }
    }
    return Status::OK();
  };

  while (pos < bytes.size()) {
    ByteReader header(bytes.substr(pos));
    uint32_t len = 0, crc = 0;
    if (!header.ReadFixed32(&len).ok() || !header.ReadFixed32(&crc).ok()) {
      return tear("torn header");
    }
    // The length floor matters for zero-filled tails (delayed
    // allocation + power loss): an all-zero header reads as len=0 crc=0
    // and Crc32("") is 0, so without the floor a zero page would pass
    // the CRC and get misclassified as structural (non-torn) corruption.
    if (len < kMinRecordPayload || len > kMaxRecordPayload ||
        len > bytes.size() - pos - 8) {
      return tear("torn payload");
    }
    const std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) {
      return tear("crc mismatch");
    }

    // The payload passed its checksum; structural errors past this point
    // are real corruption (a bad writer, not a torn append) and fail the
    // file even in torn-tail mode.
    ByteReader reader(payload);
    JournalRecord record;
    uint32_t shard = 0, count = 0;
    SCCF_RETURN_NOT_OK(reader.ReadFixed32(&shard));
    SCCF_RETURN_NOT_OK(reader.ReadFixed64(&record.seq));
    SCCF_RETURN_NOT_OK(reader.ReadFixed32(&count));
    if (static_cast<uint64_t>(count) * 16 != reader.remaining()) {
      return Status::IoError("journal record count/size mismatch at byte " +
                             std::to_string(pos));
    }
    record.shard = shard;
    record.events.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      core::RealTimeService::Event& e = record.events[i];
      SCCF_RETURN_NOT_OK(reader.ReadI32(&e.user));
      SCCF_RETURN_NOT_OK(reader.ReadI32(&e.item));
      SCCF_RETURN_NOT_OK(reader.ReadI64(&e.ts));
    }
    out->push_back(std::move(record));
    pos += 8 + len;
    if (valid_prefix != nullptr) *valid_prefix = pos;
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, bool fsync_each) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open journal " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, fd, fsync_each));
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::Append(
    size_t shard, uint64_t seq,
    std::span<const core::RealTimeService::Event> events) {
  const std::string record = EncodeJournalRecord(shard, seq, events);
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "journal " + path_ +
        " was sealed by an earlier failed append; rotate the generation "
        "(SAVE) to resume journaling");
  }
  // Where this record will start: with O_APPEND every write lands at
  // end-of-file, so end-of-file is the offset a failed append must be
  // truncated back to. -1 (e.g. an unseekable test fd) skips that.
  const off_t record_start = ::lseek(fd_, 0, SEEK_END);
  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        sys::Write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Poison("journal append failed: " + path_ + ": " +
                        std::strerror(errno),
                    record_start);
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_each_ && sys::Fsync(fd_) != 0) {
    // The record may be fully on disk even though the caller will treat
    // it as failed (and never bump the shard seq) — sealing below is
    // what keeps that seq from being reused with different events.
    return Poison("journal fsync failed: " + path_ + ": " +
                      std::strerror(errno),
                  record_start);
  }
  return Status::OK();
}

Status JournalWriter::Poison(std::string msg, int64_t record_start) {
  failed_.store(true, std::memory_order_release);
  // Best effort: cut the damaged record back out so the generation ends
  // at the last acknowledged record. If this fails too (or the fsync
  // failure left the page cache in an unknown state), the seal plus the
  // manager's GC of sealed generations keeps the damage from ever being
  // replayed ahead of acknowledged records.
  if (record_start >= 0) {
    (void)::ftruncate(fd_, static_cast<off_t>(record_start));
  }
  return Status::IoError(std::move(msg));
}

Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sys::Fsync(fd_) != 0) {
    return Status::IoError("journal fsync failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string JournalFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal-%06llu",
                static_cast<unsigned long long>(gen));
  return buf;
}

bool ParseJournalFileName(const std::string& name, uint64_t* gen) {
  constexpr char kPrefix[] = "journal-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(name[i] - '0');
    // A numeric part that overflows u64 is not a generation we could
    // ever have written; wrapping here would mis-order generations in
    // replay and misclassify which file is the torn-tail-tolerant one.
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *gen = value;
  return true;
}

}  // namespace sccf::persist
