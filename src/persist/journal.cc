#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/coding.h"

namespace sccf::persist {

namespace {
// Sanity bound on one record's payload. The largest legitimate record is
// one ingest batch's events for one shard; 1 GiB of 16-byte events is
// ~67M events in one batch — far beyond anything the serving path
// accepts — so a bigger length field can only be corruption.
constexpr uint32_t kMaxRecordPayload = 1u << 30;
}  // namespace

std::string EncodeJournalRecord(
    size_t shard, uint64_t seq,
    std::span<const core::RealTimeService::Event> events) {
  std::string payload;
  payload.reserve(16 + events.size() * 16);
  PutFixed32(&payload, static_cast<uint32_t>(shard));
  PutFixed64(&payload, seq);
  PutFixed32(&payload, static_cast<uint32_t>(events.size()));
  for (const core::RealTimeService::Event& e : events) {
    PutI32(&payload, e.user);
    PutI32(&payload, e.item);
    PutI64(&payload, e.ts);
  }
  std::string record;
  record.reserve(8 + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, Crc32(payload));
  record += payload;
  return record;
}

Status DecodeJournal(std::string_view bytes, bool allow_torn_tail,
                     std::vector<JournalRecord>* out, size_t* valid_prefix) {
  out->clear();
  size_t pos = 0;
  if (valid_prefix != nullptr) *valid_prefix = 0;

  const auto tear = [&](const char* what) -> Status {
    if (allow_torn_tail) return Status::OK();
    return Status::IoError(std::string("journal corruption (") + what +
                           ") at byte " + std::to_string(pos));
  };

  while (pos < bytes.size()) {
    ByteReader header(bytes.substr(pos));
    uint32_t len = 0, crc = 0;
    if (!header.ReadFixed32(&len).ok() || !header.ReadFixed32(&crc).ok()) {
      return tear("torn header");
    }
    if (len > kMaxRecordPayload || len > bytes.size() - pos - 8) {
      return tear("torn payload");
    }
    const std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) {
      return tear("crc mismatch");
    }

    // The payload passed its checksum; structural errors past this point
    // are real corruption (a bad writer, not a torn append) and fail the
    // file even in torn-tail mode.
    ByteReader reader(payload);
    JournalRecord record;
    uint32_t shard = 0, count = 0;
    SCCF_RETURN_NOT_OK(reader.ReadFixed32(&shard));
    SCCF_RETURN_NOT_OK(reader.ReadFixed64(&record.seq));
    SCCF_RETURN_NOT_OK(reader.ReadFixed32(&count));
    if (static_cast<uint64_t>(count) * 16 != reader.remaining()) {
      return Status::IoError("journal record count/size mismatch at byte " +
                             std::to_string(pos));
    }
    record.shard = shard;
    record.events.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      core::RealTimeService::Event& e = record.events[i];
      SCCF_RETURN_NOT_OK(reader.ReadI32(&e.user));
      SCCF_RETURN_NOT_OK(reader.ReadI32(&e.item));
      SCCF_RETURN_NOT_OK(reader.ReadI64(&e.ts));
    }
    out->push_back(std::move(record));
    pos += 8 + len;
    if (valid_prefix != nullptr) *valid_prefix = pos;
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, bool fsync_each) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open journal " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, fd, fsync_each));
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::Append(
    size_t shard, uint64_t seq,
    std::span<const core::RealTimeService::Event> events) {
  const std::string record = EncodeJournalRecord(shard, seq, events);
  std::lock_guard<std::mutex> lock(mu_);
  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partially written record is exactly what the reader's
      // torn-tail scan exists for; report the failure and let recovery
      // discard the fragment.
      return Status::IoError("journal append failed: " + path_ + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_each_ && ::fsync(fd_) != 0) {
    return Status::IoError("journal fsync failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::fsync(fd_) != 0) {
    return Status::IoError("journal fsync failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string JournalFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal-%06llu",
                static_cast<unsigned long long>(gen));
  return buf;
}

bool ParseJournalFileName(const std::string& name, uint64_t* gen) {
  constexpr char kPrefix[] = "journal-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = value;
  return true;
}

}  // namespace sccf::persist
