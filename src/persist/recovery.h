#ifndef SCCF_PERSIST_RECOVERY_H_
#define SCCF_PERSIST_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "core/realtime.h"
#include "persist/journal.h"
#include "util/status.h"

namespace sccf::persist {

/// Orchestrates the durability loop for one data directory:
///
///   <dir>/snapshot        last complete snapshot (atomically replaced)
///   <dir>/journal-<gen>   append-only ingest journal generations
///
/// Lifecycle (driven by online::Engine):
///   1. Open(dir)                  — create/validate the directory
///   2. Recover(service)           — load snapshot (if any), replay every
///                                   journal generation in order (the
///                                   newest may be torn at the tail —
///                                   that tail is cleanly discarded),
///                                   then open a fresh journal generation
///   3. service->set_ingest_sink(manager) — write-ahead from here on
///   4. Save(service) at will      — snapshot + journal rotation/GC
///
/// Why recovered state is bit-identical to an uninterrupted run: appends
/// happen under the owning shard's exclusive lock BEFORE the mutation
/// they describe, each shard section of the snapshot embeds the shard's
/// journal seq read under that same lock, and replay applies exactly the
/// records with seq > the shard's snapshot seq through the same code
/// path OnInteractionBatch uses. Journal GC at Save relies on the same
/// invariant: any generation rotated out before a snapshot's export
/// began holds only records with seq <= that snapshot's seqs, so it can
/// be deleted once the snapshot rename is durable.
///
/// Thread-safety: Append (the IngestSink face) may be called from any
/// ingest thread — callers hold one shard lock, this class's mutex nests
/// inside it, and Save acquires that mutex only while holding no shard
/// lock, so the lock order shard -> manager is never reversed. Recover
/// must run before concurrent use; Save may run concurrently with
/// serving traffic but from one thread at a time.
class PersistenceManager : public core::IngestSink {
 public:
  /// Creates the directory if needed. No recovery happens yet.
  static StatusOr<std::unique_ptr<PersistenceManager>> Open(
      const std::string& dir, bool journal_fsync);

  /// Restores `service` from the directory (no-op on a fresh one) and
  /// opens a new journal generation for subsequent appends. Pre: the
  /// service is bootstrapped; no concurrent use during recovery.
  Status Recover(core::RealTimeService* service);

  /// Snapshots every shard (one shared lock at a time), atomically
  /// replaces <dir>/snapshot, deletes journal generations older than the
  /// current one, and rotates to a fresh generation. The current
  /// generation survives one more Save: appends racing this snapshot may
  /// land in it with newer seqs than the exported shards. Exception: a
  /// generation sealed by a failed append (see JournalWriter) is deleted
  /// by the Save that rotates it out — it cannot hold post-export
  /// records, and its damaged tail must never be replayed. Save is thus
  /// also the operator remedy that un-wedges ingest after a disk error.
  Status Save(const core::RealTimeService& service);

  /// core::IngestSink — forwards to the current journal generation.
  Status Append(size_t shard, uint64_t seq,
                std::span<const core::RealTimeService::Event> events) override;

  const std::string& dir() const { return dir_; }
  std::string snapshot_path() const { return dir_ + "/snapshot"; }
  /// Current journal generation (0 before Recover).
  uint64_t journal_gen() const;

  /// The active generation's writer (null before Recover). Fault
  /// injection for the sealed-generation tests; production code never
  /// touches it.
  JournalWriter* journal_for_testing() {
    std::lock_guard<std::mutex> lock(mu_);
    return writer_.get();
  }

 private:
  PersistenceManager(std::string dir, bool journal_fsync)
      : dir_(std::move(dir)), journal_fsync_(journal_fsync) {}

  /// Replays every journal generation in ascending order against
  /// `service`; only the newest may end in a torn record.
  Status ReplayJournals(core::RealTimeService* service,
                        uint64_t* max_gen) const;

  /// Opens `gen` as the active journal file (under mu_).
  Status OpenGeneration(uint64_t gen);

  const std::string dir_;
  const bool journal_fsync_;

  /// Guards writer_/gen_ against the Append/rotation race. Nests inside
  /// shard locks; never held while acquiring one.
  mutable std::mutex mu_;
  std::unique_ptr<JournalWriter> writer_;
  uint64_t gen_ = 0;
};

}  // namespace sccf::persist

#endif  // SCCF_PERSIST_RECOVERY_H_
