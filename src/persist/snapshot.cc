#include "persist/snapshot.h"

#include <cstring>

#include "persist/fs.h"
#include "util/coding.h"

namespace sccf::persist {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'C', 'F', 'S', 'N', 'A', 'P'};
// Version 2 added the storage mode (fp32 / sq8) to the meta section.
constexpr uint32_t kVersion = 2;

constexpr uint8_t kSectionMeta = 'M';
constexpr uint8_t kSectionShard = 'S';
constexpr uint8_t kSectionEnd = 'E';

void AppendSection(std::string* out, uint8_t tag, std::string_view payload) {
  PutU8(out, tag);
  PutFixed64(out, payload.size());
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

/// Reads one section; the payload view borrows the reader's buffer.
Status ReadSection(ByteReader* reader, uint8_t* tag,
                   std::string_view* payload) {
  SCCF_RETURN_NOT_OK(reader->ReadU8(tag));
  uint64_t len = 0;
  uint32_t crc = 0;
  SCCF_RETURN_NOT_OK(reader->ReadFixed64(&len));
  SCCF_RETURN_NOT_OK(reader->ReadFixed32(&crc));
  if (len > reader->remaining()) {
    return Status::IoError("snapshot section truncated");
  }
  SCCF_RETURN_NOT_OK(reader->ReadView(static_cast<size_t>(len), payload));
  if (Crc32(*payload) != crc) {
    return Status::IoError("snapshot section checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> EncodeSnapshot(const core::RealTimeService& service) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kVersion);

  std::string meta;
  PutFixed64(&meta, service.num_shards());
  PutFixed64(&meta, service.embedding_dim());
  PutFixed32(&meta, static_cast<uint32_t>(service.options().index_kind));
  PutFixed32(&meta, static_cast<uint32_t>(service.options().metric));
  PutFixed32(&meta, static_cast<uint32_t>(service.options().storage));
  AppendSection(&out, kSectionMeta, meta);

  std::string payload;
  for (size_t s = 0; s < service.num_shards(); ++s) {
    payload.clear();
    PutFixed64(&payload, s);
    SCCF_RETURN_NOT_OK(service.ExportShard(s, &payload));
    AppendSection(&out, kSectionShard, payload);
  }
  AppendSection(&out, kSectionEnd, {});
  return out;
}

Status DecodeSnapshot(std::string_view bytes, SnapshotMeta* meta,
                      std::vector<std::string_view>* shards) {
  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.ReadView(sizeof(kMagic), &magic).ok() ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SCCF snapshot");
  }
  uint32_t version = 0;
  if (!reader.ReadFixed32(&version).ok() || version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }

  uint8_t tag = 0;
  std::string_view payload;
  SCCF_RETURN_NOT_OK(ReadSection(&reader, &tag, &payload));
  if (tag != kSectionMeta) {
    return Status::IoError("snapshot must start with a meta section");
  }
  {
    ByteReader m(payload);
    SCCF_RETURN_NOT_OK(m.ReadFixed64(&meta->num_shards));
    SCCF_RETURN_NOT_OK(m.ReadFixed64(&meta->dim));
    SCCF_RETURN_NOT_OK(m.ReadFixed32(&meta->index_kind));
    SCCF_RETURN_NOT_OK(m.ReadFixed32(&meta->metric));
    SCCF_RETURN_NOT_OK(m.ReadFixed32(&meta->storage));
    if (!m.exhausted()) {
      return Status::IoError("trailing bytes in snapshot meta");
    }
  }
  if (meta->num_shards == 0 || meta->num_shards > bytes.size()) {
    return Status::IoError("snapshot shard count out of range");
  }

  shards->assign(static_cast<size_t>(meta->num_shards), {});
  std::vector<bool> seen(shards->size(), false);
  for (;;) {
    SCCF_RETURN_NOT_OK(ReadSection(&reader, &tag, &payload));
    if (tag == kSectionEnd) break;
    if (tag != kSectionShard) {
      return Status::IoError("unknown snapshot section tag");
    }
    ByteReader p(payload);
    uint64_t shard_idx = 0;
    SCCF_RETURN_NOT_OK(p.ReadFixed64(&shard_idx));
    if (shard_idx >= shards->size()) {
      return Status::IoError("snapshot shard index out of range");
    }
    if (seen[shard_idx]) {
      return Status::IoError("duplicate snapshot shard section");
    }
    seen[shard_idx] = true;
    (*shards)[shard_idx] = payload.substr(8);
  }
  for (size_t s = 0; s < seen.size(); ++s) {
    if (!seen[s]) {
      return Status::IoError("snapshot missing shard " + std::to_string(s));
    }
  }
  if (!reader.exhausted()) {
    return Status::IoError("trailing bytes after snapshot end marker");
  }
  return Status::OK();
}

Status WriteSnapshotFile(const core::RealTimeService& service,
                         const std::string& path) {
  SCCF_ASSIGN_OR_RETURN(std::string bytes, EncodeSnapshot(service));
  return WriteFileAtomic(path, bytes, /*sync=*/true);
}

Status LoadSnapshotFile(const std::string& path,
                        core::RealTimeService* service) {
  SCCF_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  SnapshotMeta meta;
  std::vector<std::string_view> shards;
  SCCF_RETURN_NOT_OK(DecodeSnapshot(bytes, &meta, &shards));
  if (meta.num_shards != service->num_shards()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(meta.num_shards) +
        " shards, service has " + std::to_string(service->num_shards()));
  }
  if (meta.dim != service->embedding_dim()) {
    return Status::InvalidArgument("snapshot embedding dim mismatch");
  }
  if (meta.index_kind !=
          static_cast<uint32_t>(service->options().index_kind) ||
      meta.metric != static_cast<uint32_t>(service->options().metric)) {
    return Status::InvalidArgument("snapshot index kind/metric mismatch");
  }
  if (meta.storage != static_cast<uint32_t>(service->options().storage)) {
    return Status::InvalidArgument("snapshot storage mode mismatch");
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    SCCF_RETURN_NOT_OK(service->RestoreShard(s, shards[s]));
  }
  return Status::OK();
}

}  // namespace sccf::persist
