// Standalone tour of the vector-index substrate (the Faiss stand-in that
// powers real-time neighbor identification): build each backend, search,
// stream updates, and compare recall and latency against exact search.
//
// Run: ./build/examples/ann_search

#include <cstdio>
#include <set>

#include "index/brute_force_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "util/random.h"
#include "util/stopwatch.h"

int main() {
  using namespace sccf;
  const size_t n = 20000, d = 32, k = 100;
  Rng rng(42);
  std::vector<float> corpus(n * d);
  for (auto& v : corpus) v = rng.Normal();

  index::BruteForceIndex exact(d, index::Metric::kCosine);
  index::IvfFlatIndex ivf(d, index::Metric::kCosine,
                          {.nlist = 128, .nprobe = 8});
  index::HnswIndex hnsw(d, index::Metric::kCosine,
                        {.m = 16, .ef_construction = 100, .ef_search = 64});

  std::printf("indexing %zu vectors (d=%zu) ...\n", n, d);
  if (!ivf.Train(corpus, n).ok()) return 1;
  Stopwatch build_clock;
  for (size_t i = 0; i < n; ++i) {
    const float* v = corpus.data() + i * d;
    const int id = static_cast<int>(i);
    if (!exact.Add(id, v).ok() || !ivf.Add(id, v).ok() ||
        !hnsw.Add(id, v).ok()) {
      return 1;
    }
  }
  std::printf("built all three indexes in %.2fs\n",
              build_clock.ElapsedSeconds());

  // Recall and latency over random queries.
  struct Probe {
    const char* name;
    index::VectorIndex* idx;
    double recall = 0.0;
    double ms = 0.0;
  };
  Probe probes[] = {{"BruteForce", &exact}, {"IVF-Flat", &ivf},
                    {"HNSW", &hnsw}};
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> q(d);
    for (auto& v : q) v = rng.Normal();
    auto truth = exact.Search(q.data(), k);
    std::set<int> truth_ids;
    for (const auto& nb : truth.value()) truth_ids.insert(nb.id);
    for (auto& p : probes) {
      Stopwatch clock;
      auto got = p.idx->Search(q.data(), k);
      p.ms += clock.ElapsedMillis();
      size_t hits = 0;
      for (const auto& nb : got.value()) hits += truth_ids.count(nb.id);
      p.recall += static_cast<double>(hits) / truth_ids.size();
    }
  }
  std::printf("\n%-12s %10s %12s\n", "backend", "recall@100", "latency ms");
  for (const auto& p : probes) {
    std::printf("%-12s %10.3f %12.3f\n", p.name, p.recall / trials,
                p.ms / trials);
  }

  // Streaming updates: move a vector and find it again immediately.
  std::vector<float> q(corpus.begin(), corpus.begin() + d);
  for (auto& v : q) v = -v;  // opposite direction of vector 0
  if (!hnsw.Add(0, q.data()).ok()) return 1;
  auto after = hnsw.Search(q.data(), 1);
  std::printf("\nafter streaming update, nearest to the new direction: id "
              "%d (expected 0)\n",
              after.value().empty() ? -1 : after.value()[0].id);
  return 0;
}
