// Sharded real-time serving demo: concurrent *batched* ingest from
// multiple producer threads through the Engine facade.
//
// The Engine's RealTimeService hash-partitions users across shards, each
// with its own vector index, write buffer, and shared_mutex. A batched
// IngestRequest groups its events by shard and takes each shard's write
// lock once, so producers contend per batch rather than per event; with
// a compaction threshold the index refreshes are staged and flushed in
// bursts while queries merge the staged rows. Four producer threads
// stream batches below; afterwards we print the Table III-style latency
// breakdown (infer / index / identify) aggregated *per shard*, plus each
// shard's population — the per-shard view of the paper's headline
// "milliseconds per interaction" claim.
//
// This demo also runs the background compaction thread
// (Options::background_compaction): once the producers stop, the shards
// go cold, and the thread drains whatever they left staged within
// ~1.5 compaction intervals — no query or Compact() call required.
//
// Run: ./build/release/examples/realtime_sharded

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "sharded";
  cfg.num_users = 600;
  cfg.num_items = 800;
  cfg.num_clusters = 12;
  cfg.min_actions = 12;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  models::Fism::Options fism_opts;
  fism_opts.dim = 32;
  fism_opts.epochs = 4;
  models::Fism fism(fism_opts);
  if (!fism.Fit(split).ok()) return 1;

  constexpr int kProducers = 4;
  constexpr size_t kBatchSize = 32;

  online::Engine::Options opts;
  opts.beta = 20;
  opts.num_shards = 4;  // explicit so the demo shards on any host
  opts.compaction_threshold = 16;  // stage refreshes, flush in bursts
  opts.compaction_interval_ms = 50;  // ...and never hold them past 50ms
  opts.background_compaction = true;  // drain cold shards without traffic
  online::Engine engine(fism, opts);
  if (!engine.BootstrapFromSplit(split).ok()) return 1;
  const core::RealTimeService& service = engine.service();

  const std::vector<size_t> sizes = service.ShardSizes();
  std::printf("bootstrapped %zu users into %zu shards:", engine.num_users(),
              service.num_shards());
  for (size_t s = 0; s < sizes.size(); ++s) {
    std::printf(" shard%zu=%zu", s, sizes[s]);
  }
  std::printf("\n\n");

  // Per-shard timing accumulators, one mutex per shard (contended only by
  // producers that happen to hit the same shard back to back).
  struct ShardTimings {
    std::mutex mu;
    LatencyStats infer, index, identify;
    size_t interactions = 0;
  };
  std::vector<ShardTimings> per_shard(service.num_shards());
  std::atomic<int> failures{0};
  std::atomic<size_t> batches{0};
  std::atomic<size_t> events_total{0};

  // Each producer owns the users {u : u % kProducers == t} and streams 8
  // fresh interactions per user, packed into IngestRequest batches of
  // kBatchSize — the batched version of the realtime_stream demo's loop.
  Stopwatch wall;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      const int num_users = static_cast<int>(split.num_users());
      const int num_items = static_cast<int>(dataset.num_items());
      online::Engine::IngestRequest req;
      req.events.reserve(kBatchSize);
      auto flush = [&] {
        if (req.events.empty()) return;
        auto resp = engine.Ingest(req);
        if (!resp.ok()) {
          failures.fetch_add(1);
        } else {
          batches.fetch_add(1);
          events_total.fetch_add(resp->num_events);
          for (size_t i = 0; i < resp->timings.size(); ++i) {
            const auto& timing = resp->timings[i];
            // Coalesced events (not their user's last in the batch)
            // carry zero cost; skip them so the per-shard means below
            // stay per *refresh*, not diluted per raw event.
            if (timing.total_ms() == 0.0) continue;
            ShardTimings& st =
                per_shard[service.ShardOf(req.events[i].user)];
            std::lock_guard<std::mutex> lock(st.mu);
            st.infer.Add(timing.infer_ms);
            st.index.Add(timing.index_ms);
            st.identify.Add(timing.identify_ms);
            ++st.interactions;
          }
        }
        req.events.clear();
      };
      for (int step = 0; step < 8; ++step) {
        for (int u = t; u < num_users; u += kProducers) {
          const int item = (u * 31 + step * 17) % num_items;
          req.events.push_back({u, item, step});
          if (req.events.size() == kBatchSize) flush();
        }
      }
      flush();
    });
  }
  for (auto& p : producers) p.join();
  const double wall_s = wall.ElapsedSeconds();

  if (failures.load() != 0) {
    std::fprintf(stderr, "%d ingest batches failed\n", failures.load());
    return 1;
  }

  size_t refreshes = 0;
  for (const auto& st : per_shard) refreshes += st.interactions;
  std::printf(
      "%d producer threads streamed %zu interactions in %zu batches "
      "(%zu events each) in %.2fs (%.0f updates/sec), coalesced into "
      "%zu refreshes; %zu upserts still staged\n",
      kProducers, events_total.load(), batches.load(), kBatchSize, wall_s,
      events_total.load() / wall_s, refreshes, engine.pending_upserts());

  // The producers are gone, so the shards are cold — wait out roughly
  // two compaction intervals and let the background thread drain them.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(2 * opts.compaction_interval_ms + 25));
  std::printf(
      "background compaction (interval %lld ms): %zu upserts staged after "
      "the cold-shard sweep\n\n",
      static_cast<long long>(opts.compaction_interval_ms),
      engine.pending_upserts());
  engine.StopBackgroundCompaction();

  if (!engine.Compact().ok()) return 1;  // barrier for whatever remains

  // Table III columns, per shard. Batched events that were coalesced
  // into one re-inference carry their cost on the user's last event, so
  // the means are per *refresh*, not per raw event.
  TablePrinter table({"shard", "users", "refreshes", "infer (ms)",
                      "index (ms)", "identify (ms)", "total (ms)"});
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const auto& st = per_shard[s];
    table.AddRow({std::to_string(s), std::to_string(sizes[s]),
                  std::to_string(st.interactions),
                  FormatFloat(st.infer.mean(), 3),
                  FormatFloat(st.index.mean(), 3),
                  FormatFloat(st.identify.mean(), 3),
                  FormatFloat(st.infer.mean() + st.index.mean() +
                                  st.identify.mean(),
                              3)});
  }
  table.Print();

  std::printf(
      "\nEach batch held a shard's write lock once for its whole group "
      "(infer + staged index refresh); identify fanned a top-%zu search "
      "out across all %zu shards under read locks, merging each shard's "
      "write buffer, and k-way-merged the results.\n",
      static_cast<size_t>(opts.beta), service.num_shards());
  return 0;
}
