// Sharded real-time serving demo: concurrent ingest from multiple
// producer threads.
//
// The RealTimeService hash-partitions users across shards, each with its
// own vector index and shared_mutex, so OnInteraction calls for users in
// different shards run in parallel. Four producer threads stream
// interactions below; afterwards we print the Table III-style latency
// breakdown (infer / index / identify) aggregated *per shard*, plus each
// shard's population — the per-shard view of the paper's headline
// "milliseconds per interaction" claim.
//
// Run: ./build/release/examples/realtime_sharded

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/realtime.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "sharded";
  cfg.num_users = 600;
  cfg.num_items = 800;
  cfg.num_clusters = 12;
  cfg.min_actions = 12;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  models::Fism::Options fism_opts;
  fism_opts.dim = 32;
  fism_opts.epochs = 4;
  models::Fism fism(fism_opts);
  if (!fism.Fit(split).ok()) return 1;

  constexpr int kProducers = 4;

  core::RealTimeService::Options rt_opts;
  rt_opts.beta = 20;
  rt_opts.num_shards = 4;  // explicit so the demo shards on any host
  core::RealTimeService service(fism, rt_opts);
  if (!service.BootstrapFromSplit(split).ok()) return 1;

  const std::vector<size_t> sizes = service.ShardSizes();
  std::printf("bootstrapped %zu users into %zu shards:", service.num_users(),
              service.num_shards());
  for (size_t s = 0; s < sizes.size(); ++s) {
    std::printf(" shard%zu=%zu", s, sizes[s]);
  }
  std::printf("\n\n");

  // Per-shard timing accumulators, one mutex per shard (contended only by
  // producers that happen to hit the same shard back to back).
  struct ShardTimings {
    std::mutex mu;
    LatencyStats infer, index, identify;
    size_t interactions = 0;
  };
  std::vector<ShardTimings> per_shard(service.num_shards());
  std::atomic<int> failures{0};

  // Each producer owns the users {u : u % kProducers == t} and streams 8
  // fresh interactions per user — the multi-threaded version of the
  // realtime_stream demo's single loop.
  Stopwatch wall;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      const int num_users = static_cast<int>(split.num_users());
      const int num_items = static_cast<int>(dataset.num_items());
      for (int step = 0; step < 8; ++step) {
        for (int u = t; u < num_users; u += kProducers) {
          const int item = (u * 31 + step * 17) % num_items;
          auto timing = service.OnInteraction(u, item);
          if (!timing.ok()) {
            failures.fetch_add(1);
            continue;
          }
          ShardTimings& st = per_shard[service.ShardOf(u)];
          std::lock_guard<std::mutex> lock(st.mu);
          st.infer.Add(timing->infer_ms);
          st.index.Add(timing->index_ms);
          st.identify.Add(timing->identify_ms);
          ++st.interactions;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  const double wall_s = wall.ElapsedSeconds();

  if (failures.load() != 0) {
    std::fprintf(stderr, "%d interactions failed\n", failures.load());
    return 1;
  }

  size_t total = 0;
  for (const auto& st : per_shard) total += st.interactions;
  std::printf("%d producer threads streamed %zu interactions in %.2fs "
              "(%.0f updates/sec)\n\n",
              kProducers, total, wall_s, total / wall_s);

  // Table III columns, per shard.
  TablePrinter table({"shard", "users", "interactions", "infer (ms)",
                      "index (ms)", "identify (ms)", "total (ms)"});
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const auto& st = per_shard[s];
    table.AddRow({std::to_string(s), std::to_string(sizes[s]),
                  std::to_string(st.interactions),
                  FormatFloat(st.infer.mean(), 3),
                  FormatFloat(st.index.mean(), 3),
                  FormatFloat(st.identify.mean(), 3),
                  FormatFloat(st.infer.mean() + st.index.mean() +
                                  st.identify.mean(),
                              3)});
  }
  table.Print();

  std::printf(
      "\nEach interaction held only its own shard's write lock for the "
      "infer+index step; the identify step fanned a top-%zu search out "
      "across all %zu shards under read locks and k-way-merged the "
      "results.\n",
      static_cast<size_t>(rt_opts.beta), service.num_shards());
  return 0;
}
