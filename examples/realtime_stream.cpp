// Real-time streaming demo: the paper's headline capability.
//
// A RealTimeService holds the fitted inductive model, a dynamic vector
// index of user embeddings, and live histories. Each new interaction
// re-infers the user's representation with one forward pass and refreshes
// the index — so the neighborhood (and therefore the user-based candidate
// list) adapts *immediately*, with no retraining.
//
// The demo streams one user through a taste change (she starts consuming
// another segment's items) and prints how her neighborhood and
// recommendations shift, with the per-interaction latency breakdown of
// paper Table III.
//
// Run: ./build/examples/realtime_stream

#include <cstdio>

#include "core/realtime.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "stream";
  cfg.num_users = 400;
  cfg.num_items = 500;
  cfg.num_clusters = 10;
  cfg.min_actions = 12;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  models::Fism::Options fism_opts;
  fism_opts.dim = 32;
  fism_opts.epochs = 8;
  models::Fism fism(fism_opts);
  if (!fism.Fit(split).ok()) return 1;

  core::RealTimeService::Options rt_opts;
  rt_opts.beta = 20;
  rt_opts.index_kind = core::IndexKind::kHnsw;  // sub-linear identify
  core::RealTimeService service(fism, rt_opts);
  if (!service.BootstrapFromSplit(split).ok()) return 1;
  std::printf("bootstrapped %zu users into the HNSW index\n",
              service.num_users());

  const int user = 0;
  const int donor = 123;  // we stream the donor's taste into `user`

  auto print_state = [&](const char* label) {
    auto nbrs = service.Neighbors(user);
    auto recs = service.RecommendUserBased(user, 5);
    std::printf("\n%s\n  neighbors:", label);
    size_t shown = 0;
    for (const auto& nb : nbrs.value()) {
      if (shown++ == 5) break;
      std::printf(" %d(%.2f)", nb.id, nb.score);
    }
    std::printf("\n  user-based recs:");
    for (const auto& r : recs.value()) {
      std::printf(" %d(%.2f)", r.id, r.score);
    }
    std::printf("\n");
  };

  print_state("BEFORE drift (original taste)");

  // Stream 15 of the donor's recent items as new interactions.
  const auto donor_history = split.TrainSequence(donor);
  const size_t take = donor_history.size() < 15 ? donor_history.size() : 15;
  double total_ms = 0.0;
  for (size_t i = donor_history.size() - take; i < donor_history.size();
       ++i) {
    auto timing = service.OnInteraction(user, donor_history[i]);
    if (!timing.ok()) return 1;
    total_ms += timing->total_ms();
    if (i + 3 >= donor_history.size()) {
      std::printf(
          "  interaction item=%4d  infer %.3fms  index %.3fms  identify "
          "%.3fms\n",
          donor_history[i], timing->infer_ms, timing->index_ms,
          timing->identify_ms);
    }
  }
  std::printf("streamed %zu interactions, mean %.3f ms each\n", take,
              total_ms / take);

  print_state("AFTER drift (adopted the donor's taste)");
  auto nbrs = service.Neighbors(user);
  for (const auto& nb : nbrs.value()) {
    if (nb.id == donor) {
      std::printf(
          "\nthe donor (user %d) now appears in user %d's neighborhood — "
          "picked up in real time, no retraining.\n",
          donor, user);
      break;
    }
  }
  return 0;
}
