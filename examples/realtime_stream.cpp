// Real-time streaming demo: the paper's headline capability, driven
// through the batch-first serving Engine.
//
// The Engine wraps the sharded RealTimeService behind typed
// request/response structs — IngestRequest/IngestResponse for the write
// path, RecommendRequest/NeighborsRequest/HistoryRequest for reads. Each
// ingested interaction re-infers the user's representation with one
// forward pass and refreshes the index, so the neighborhood (and the
// user-based candidate list) adapts *immediately*, with no retraining.
//
// The demo streams one user through a taste change (she starts consuming
// another segment's items) in two phases:
//   1. per-event ingest (batch of 1) with the Table III latency breakdown,
//   2. one *batched* IngestRequest routed through the write buffer
//      (compaction deferred), showing that queries merge staged upserts —
//      results stay fresh before Compact() ever runs,
//   3. the wall-clock compaction policy: once the staged rows age past
//      Options::compaction_interval_ms, the next query drains them into
//      the index on its own — no explicit Compact() needed.
//
// Run: ./build/release/examples/realtime_stream

#include <chrono>
#include <cstdio>
#include <thread>

#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "online/engine.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "stream";
  cfg.num_users = 400;
  cfg.num_items = 500;
  cfg.num_clusters = 10;
  cfg.min_actions = 12;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  models::Fism::Options fism_opts;
  fism_opts.dim = 32;
  fism_opts.epochs = 8;
  models::Fism fism(fism_opts);
  if (!fism.Fit(split).ok()) return 1;

  online::Engine::Options opts;
  opts.beta = 20;
  opts.index_kind = core::IndexKind::kHnsw;  // sub-linear identify
  opts.compaction_threshold = 64;  // stage upserts; flush every 64 users
  opts.compaction_interval_ms = 250;  // ...or once staged rows age 250ms
  online::Engine engine(fism, opts);
  if (!engine.BootstrapFromSplit(split).ok()) return 1;
  std::printf("bootstrapped %zu users into the HNSW index\n",
              engine.num_users());

  const int user = 0;
  const int donor = 123;  // we stream the donor's taste into `user`

  auto print_state = [&](const char* label) {
    auto nbrs = engine.Neighbors({user, std::nullopt});
    auto recs = engine.Recommend({user, 5, {}});
    std::printf("\n%s\n  neighbors:", label);
    size_t shown = 0;
    for (const auto& nb : nbrs->neighbors) {
      if (shown++ == 5) break;
      std::printf(" %d(%.2f)", nb.id, nb.score);
    }
    std::printf("\n  user-based recs:");
    for (const auto& r : recs->candidates) {
      std::printf(" %d(%.2f)", r.id, r.score);
    }
    std::printf("\n");
  };

  print_state("BEFORE drift (original taste)");

  // Phase 1: stream 8 of the donor's recent items one event at a time —
  // the classic serving loop, with per-event Table III timings.
  const auto donor_history = split.TrainSequence(donor);
  const size_t take = donor_history.size() < 15 ? donor_history.size() : 15;
  const size_t first = donor_history.size() - take;
  const size_t phase1 = take / 2;
  double total_ms = 0.0;
  for (size_t i = first; i < first + phase1; ++i) {
    online::Engine::IngestRequest req;
    req.events.push_back({user, donor_history[i], static_cast<int64_t>(i)});
    auto resp = engine.Ingest(req);
    if (!resp.ok()) return 1;
    total_ms += resp->wall_ms;
    if (i + 3 >= first + phase1) {
      const auto& t = resp->timings[0];
      std::printf(
          "  event item=%4d  infer %.3fms  index %.3fms  identify %.3fms\n",
          donor_history[i], t.infer_ms, t.index_ms, t.identify_ms);
    }
  }
  std::printf("phase 1: %zu single-event requests, mean %.3f ms each\n",
              phase1, total_ms / phase1);

  // Phase 2: the rest of the drift as ONE batched request. The user is
  // re-inferred once (from the final history), the refresh is staged in
  // the shard's write buffer, and the neighborhood query below still
  // sees the fresh state — the buffer is merged into every search.
  online::Engine::IngestRequest batch;
  for (size_t i = first + phase1; i < donor_history.size(); ++i) {
    batch.events.push_back({user, donor_history[i],
                            static_cast<int64_t>(i)});
  }
  auto batch_resp = engine.Ingest(batch);
  if (!batch_resp.ok()) return 1;
  std::printf(
      "phase 2: 1 batched request, %zu events -> %zu user re-inferred, "
      "%.3f ms wall, %zu upserts staged (not yet compacted)\n",
      batch_resp->num_events, batch_resp->users_touched,
      batch_resp->wall_ms, batch_resp->pending_upserts);

  print_state("AFTER drift (adopted the donor's taste, pre-compaction)");

  auto nbrs = engine.Neighbors({user, std::nullopt});
  for (const auto& nb : nbrs->neighbors) {
    if (nb.id == donor) {
      std::printf(
          "\nthe donor (user %d) now appears in user %d's neighborhood — "
          "picked up in real time through the staged write buffer, no "
          "retraining and no index churn.\n",
          donor, user);
      break;
    }
  }

  // Phase 3: instead of calling Compact(), let the age policy do it.
  // After the interval elapses, the first query touching the shard
  // try-locks its write lock, drains the staged rows into the HNSW
  // index (bit-exact — same path Compact() takes), and then serves.
  std::printf(
      "\nwaiting out compaction_interval_ms (%lld ms) with %zu upserts "
      "staged...\n",
      static_cast<long long>(opts.compaction_interval_ms),
      engine.pending_upserts());
  std::this_thread::sleep_for(
      std::chrono::milliseconds(opts.compaction_interval_ms + 100));
  if (!engine.Neighbors({user, std::nullopt}).ok()) return 1;
  std::printf(
      "after one query past the interval: %zu pending upserts (the query "
      "path flushed the aged buffer; history length %zu)\n",
      engine.pending_upserts(), engine.History({user})->items.size());
  return 0;
}
