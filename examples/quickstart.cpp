// Quickstart: train an inductive UI model, wrap it with SCCF, and print
// recommendations for one user.
//
//   1. generate a small e-commerce-like dataset,
//   2. train FISM (any InductiveUiModel works),
//   3. Sccf::Fit builds the user-neighborhood index and trains the
//      integrating MLP,
//   4. ScoreAll produces the fused candidate scores.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/sccf.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/fism.h"

int main() {
  using namespace sccf;

  // 1. A small synthetic corpus with latent user segments.
  data::SyntheticConfig cfg;
  cfg.name = "quickstart";
  cfg.num_users = 300;
  cfg.num_items = 400;
  cfg.num_clusters = 20;
  cfg.min_actions = 10;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);
  std::printf("dataset: %zu users, %zu items, %zu actions\n",
              dataset.num_users(), dataset.num_items(),
              dataset.num_actions());

  // 2. Train the inductive UI component.
  models::Fism::Options fism_opts;
  fism_opts.dim = 32;
  fism_opts.epochs = 10;
  models::Fism fism(fism_opts);
  if (auto st = fism.Fit(split); !st.ok()) {
    std::fprintf(stderr, "FISM: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("FISM trained (final loss %.4f)\n", fism.last_epoch_loss());

  // 3. Wrap it with SCCF: user-based component + integrating MLP.
  core::Sccf::Options sccf_opts;
  sccf_opts.num_candidates = 50;
  sccf_opts.user_based.beta = 50;
  core::Sccf sccf(fism, sccf_opts);
  if (auto st = sccf.Fit(split); !st.ok()) {
    std::fprintf(stderr, "SCCF: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Recommend for one user.
  const size_t user = 7;
  const auto history = split.TrainPlusValidSequence(user);
  std::printf("\nuser %zu history tail:", user);
  for (size_t i = history.size() > 8 ? history.size() - 8 : 0;
       i < history.size(); ++i) {
    std::printf(" %d", history[i]);
  }
  std::vector<float> scores;
  sccf.ScoreAll(user, history, &scores);
  auto top = core::TopNFromScores(scores, 10);
  std::printf("\ntop-10 SCCF recommendations:\n");
  for (const auto& c : top) {
    std::printf("  item %4d   score %+.3f\n", c.id, c.score);
  }

  // Compare quality against the bare UI model.
  eval::EvalOptions eopts;
  eopts.cutoffs = {20};
  auto base = eval::Evaluate(fism, split, eopts);
  auto fused = eval::Evaluate(sccf, split, eopts);
  if (base.ok() && fused.ok()) {
    std::printf("\nHR@20:  FISM %.4f  ->  FISM-SCCF %.4f\n", base->HrAt(20),
                fused->HrAt(20));
  }
  return 0;
}
