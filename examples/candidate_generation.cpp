// Two-stage candidate generation, dissected.
//
// Shows the three SCCF components separately for one user:
//   - C_UI: the global list from the inductive UI model (Eq. 10),
//   - C_UU: the local list voted by the user's real-time neighborhood
//           (Eq. 11-12),
//   - the integrating MLP's fused ranking over the union (Eq. 15-17),
// and demonstrates the paper's "beer & diapers" argument: items that the
// UI model ranks poorly but the user's segment loves surface through the
// UU list.
//
// Run: ./build/examples/candidate_generation

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/sccf.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/sasrec.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "candgen";
  cfg.num_users = 400;
  cfg.num_items = 500;
  cfg.num_clusters = 25;  // strong local structure
  cfg.primary_affinity = 0.75;
  cfg.min_actions = 12;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  // A sequential deep UI component this time (SASRec).
  models::SasRec::Options sas_opts;
  sas_opts.dim = 32;
  sas_opts.max_len = 30;
  sas_opts.num_blocks = 1;
  sas_opts.epochs = 5;
  models::SasRec sasrec(sas_opts);
  std::printf("training SASRec ...\n");
  if (!sasrec.Fit(split).ok()) return 1;

  core::Sccf::Options opts;
  opts.num_candidates = 20;
  opts.user_based.beta = 30;
  core::Sccf sccf(sasrec, opts);
  std::printf("fitting SCCF (index + merger) ...\n");
  if (!sccf.Fit(split).ok()) return 1;

  const size_t user = 11;
  const auto history = split.TrainPlusValidSequence(user);
  const int truth = split.TestItem(user);

  const auto lists = sccf.CandidateListsFor(user, history);
  auto print_list = [&](const char* name, const core::CandidateList& list) {
    std::printf("%s:", name);
    for (size_t i = 0; i < list.size() && i < 10; ++i) {
      std::printf(" %d%s", list[i].id, list[i].id == truth ? "*" : "");
    }
    std::printf("  (* = held-out next item)\n");
  };
  std::printf("\nuser %zu, ground-truth next item: %d\n", user, truth);
  print_list("C_UI (global view) ", lists.ui);
  print_list("C_UU (local view)  ", lists.uu);

  // Which items did only the neighborhood surface?
  std::set<int> ui_ids;
  for (const auto& c : lists.ui) ui_ids.insert(c.id);
  std::printf("local-only candidates (in C_UU, missed by C_UI):");
  size_t shown = 0;
  for (const auto& c : lists.uu) {
    if (ui_ids.count(c.id) == 0 && shown++ < 8) std::printf(" %d", c.id);
  }
  std::printf("\n");

  // Fused ranking over the union.
  std::vector<float> scores;
  sccf.ScoreAll(user, history, &scores);
  auto fused = core::TopNFromScores(scores, 10);
  std::printf("fused top-10 (integrating MLP):");
  for (const auto& c : fused) {
    std::printf(" %d%s", c.id, c.id == truth ? "*" : "");
  }
  std::printf("\n");
  return 0;
}
