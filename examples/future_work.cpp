// The paper's two future-work directions, running:
//
//   1. profile-aware neighbor identification — side information blended
//      into the user-user similarity (conclusion, paragraph 2),
//   2. SCCF at the ranking stage — injecting the neighborhood signal into
//      the re-ranking of an externally produced candidate set.
//
// Also demonstrates checkpointing: the trained model is saved and
// reloaded before serving.
//
// Run: ./build/examples/future_work

#include <cstdio>

#include "core/profile_neighborhood.h"
#include "core/rank_stage.h"
#include "core/user_based.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/fism.h"
#include "nn/serialize.h"

int main() {
  using namespace sccf;

  data::SyntheticConfig cfg;
  cfg.name = "future";
  cfg.num_users = 300;
  cfg.num_items = 400;
  cfg.num_clusters = 20;
  cfg.min_actions = 10;
  cfg.max_actions = 40;
  data::SyntheticGenerator gen(cfg);
  auto ds = gen.Generate();
  if (!ds.ok()) return 1;
  data::Dataset dataset = std::move(ds).value();
  data::LeaveOneOutSplit split(dataset);

  // Train, checkpoint, reload — the deployment cycle.
  models::Fism::Options fopts;
  fopts.dim = 32;
  fopts.epochs = 8;
  models::Fism trained(fopts);
  if (!trained.Fit(split).ok()) return 1;
  const std::string ckpt = "/tmp/sccf_future_work.ckpt";
  if (!nn::SaveParameters(ckpt, trained.Parameters()).ok()) return 1;

  models::Fism::Options serve_opts = fopts;
  serve_opts.epochs = 0;  // allocate parameters without training
  models::Fism fism(serve_opts);
  if (!fism.Fit(split).ok()) return 1;
  if (auto st = nn::LoadParameters(ckpt, fism.Parameters()); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model checkpointed to %s and reloaded\n", ckpt.c_str());

  core::UserBasedComponent uu(fism, {});
  if (!uu.Fit(split).ok()) return 1;

  // --- 1. Profile-aware neighborhoods.
  // Synthetic profiles: [age bucket, region]; users in the same latent
  // segment share a region with high probability.
  Rng rng(5);
  std::vector<std::vector<int>> profiles(dataset.num_users());
  for (size_t u = 0; u < profiles.size(); ++u) {
    const int segment =
        gen.user_primary_cluster()[dataset.original_user_ids()[u]];
    profiles[u] = {static_cast<int>(rng.Uniform(5)), segment % 7};
  }
  core::ProfileAwareNeighborhood profile_nbrs(
      &uu.index(), profiles, {.profile_weight = 0.3f, .expansion = 3});

  const size_t user = 4;
  std::vector<float> emb(fism.embedding_dim());
  fism.InferUserEmbedding(split.TrainSequence(user), emb.data());
  auto plain = uu.Neighbors(emb.data(), 5, static_cast<int>(user));
  auto blended =
      profile_nbrs.Neighbors(emb.data(), profiles[user], 5,
                             static_cast<int>(user));
  std::printf("\nneighbors of user %zu\n  embedding only:", user);
  for (const auto& nb : plain) std::printf(" %d", nb.id);
  std::printf("\n  with profiles: ");
  for (const auto& nb : blended.value()) std::printf(" %d", nb.id);
  std::printf("\n");

  // --- 2. Ranking-stage SCCF.
  // Suppose an upstream generator produced these candidates; re-rank them
  // with the neighborhood signal blended in.
  std::vector<int> candidates;
  for (int i = 0; i < 15; ++i) {
    candidates.push_back(static_cast<int>(rng.Uniform(dataset.num_items())));
  }
  core::SccfRankStage stage(fism, uu, {.uu_weight = 0.5f});
  auto reranked = stage.Rerank(user, split.TrainSequence(user), candidates);
  if (!reranked.ok()) return 1;
  std::printf("\nranking-stage SCCF over %zu external candidates:\n",
              candidates.size());
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  #%zu item %4d  blended score %+.3f\n", i + 1,
                (*reranked)[i].id, (*reranked)[i].score);
  }
  return 0;
}
